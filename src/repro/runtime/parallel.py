"""Thread/process fan-out for model fitting, prediction, and planning.

Fitting an iWare-E ensemble is embarrassingly parallel at two levels — one
weak learner per effort threshold, one base classifier per bootstrap — but
every stochastic choice (bootstrap indices, child seeds) must come from the
single master generator in a fixed order, or results stop being
reproducible. The contract used throughout the package is therefore
*two-phase execution*: perform all shared/stateful work serially (draw
randomness, construct members, compute shared surfaces), then fan the pure
per-item calls out through :func:`parallel_map` / :func:`run_deferred`. The
fanned work only touches per-item state, so parallel results are
bit-identical to serial ones — with any backend.

Prediction is even easier: a fitted model is read-only state and every test
row is independent, so *serving* fans out over ``(member x tile)`` tasks
with no phase split at all (:func:`predict_map`). Tiling the test rows
serves a second purpose beyond parallelism: each task's transient
allocations (a GP member's ``(n_train x tile)`` kernel slab, a tree's
per-level index lanes) are bounded by the tile size instead of the full
query, which is what keeps million-cell risk maps memory-bounded.

Two pool backends are available, because the fanned workloads split into two
classes:

* ``"thread"`` — right when the heavy lifting happens in GIL-releasing
  native code (GP Cholesky factorisations, kernel products, HiGHS solves).
  Zero serialisation cost; tasks may share state by reference.
* ``"process"`` — right for pure-Python/numpy-dispatch work (decision-tree
  growth, SVM epochs) that the GIL would serialise in a thread pool. Tasks
  cross the process boundary by pickling, so they must be picklable
  (two-phase fit tasks are: phase 1 strips the unpicklable factory
  closures, and fitted models travel back as plain arrays — the same
  representation the npz persistence layer uses).
* ``"auto"`` — inspects the tasks' ``backend_hint`` attributes (see
  :meth:`repro.ml.base.Classifier.fit_backend_hint`) and picks the process
  pool only when every task asks for it; anything that fails to pickle
  falls back to threads rather than erroring.

The picklability requirement is machine-checked: analyzer rule RP003
(``repro.analysis``, run by ``make lint``) resolves the classes constructed
at :func:`parallel_map` / :func:`run_deferred` / :func:`predict_map` call
sites and rejects any that capture lambdas, locally-defined functions, or
``threading`` primitives in ``__init__`` — unless a ``__getstate__`` strips
them before the task crosses the process boundary.

Worker counts are clamped to the CPUs actually available to this process
(cgroup/affinity aware): oversubscribing a small container with more workers
than cores only adds pool overhead, so ``n_jobs=8`` on a 2-core box runs 2
workers — and on a single core every backend degrades to the plain serial
loop, keeping "parallel" never slower than serial.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

import numpy as np

from repro.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Valid ``backend`` arguments accepted throughout the package.
BACKENDS = ("auto", "thread", "process")


def effective_cpu_count() -> int:
    """CPUs usable by this process (respects scheduler affinity masks)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean serial; positive values are taken literally;
    negative values count back from the CPU count (``-1`` = all cores,
    ``-2`` = all but one, ...). Zero is rejected.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ConfigurationError("n_jobs must not be 0 (use 1 for serial)")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got '{backend}'"
        )
    return backend


def _call(task: Callable[[], R]) -> R:
    """Invoke a zero-argument task (module-level so process pools can map it)."""
    return task()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int | None = 1,
    backend: str = "thread",
) -> list[R]:
    """``[fn(x) for x in items]``, optionally through a worker pool.

    Results come back in input order. With ``n_jobs`` of ``None``/``1``,
    fewer than two items, or a single usable CPU, this is a plain list
    comprehension — the serial path has zero overhead and identical
    semantics. ``backend="process"`` requires ``fn`` and every item to be
    picklable (``fn`` should be a module-level function).
    """
    if backend == "auto":
        raise ConfigurationError(
            "parallel_map needs an explicit backend; use run_deferred for "
            "hint-based auto selection"
        )
    check_backend(backend)
    materialised: Sequence[T] = list(items)
    workers = min(
        resolve_n_jobs(n_jobs), len(materialised), effective_cpu_count()
    )
    if workers <= 1 or len(materialised) <= 1:
        return [fn(item) for item in materialised]
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, materialised))
    chunksize = max(1, len(materialised) // (workers * 2))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, materialised, chunksize=chunksize))


def vote_backend(hints: Sequence[str]) -> str:
    """Resolve a pool flavour from per-task backend hints.

    The process pool only pays off when every *substantive* task is
    GIL-bound Python work (a single thread-happy GP fit would serialise
    behind the pickling anyway): ``"process"`` wins iff at least one task
    asks for it and none asks for ``"thread"``. Trivial no-op tasks
    advertise ``"any"`` and do not get a vote; a group of nothing but
    abstainers stays ``"any"`` so it cannot poison an outer vote either.
    """
    votes = [hint for hint in hints if hint != "any"]
    if not votes:
        return "any"
    if all(vote == "process" for vote in votes):
        return "process"
    return "thread"


def preferred_backend(tasks: Sequence[object]) -> str:
    """Resolve ``"auto"`` from the tasks' ``backend_hint`` attributes."""
    result = vote_backend(
        [getattr(task, "backend_hint", "thread") for task in tasks]
    )
    return "process" if result == "process" else "thread"


def run_deferred(
    tasks: Sequence[Callable[[], R]],
    n_jobs: int | None = 1,
    backend: str = "auto",
) -> list[R]:
    """Run phase-2 fit tasks (zero-argument callables), optionally pooled.

    This is the fan-out entry point of the two-phase fit protocol
    (:meth:`repro.ml.base.Classifier.fit_deferred`): phase 1 has already
    drawn all shared randomness serially, so the tasks here are pure and
    order-independent — any backend yields bit-identical results.

    With ``backend="auto"`` the pool is chosen from the tasks'
    ``backend_hint`` attributes, and tasks that turn out not to pickle
    (e.g. closures over live model state) quietly fall back to the thread
    pool. An explicit ``backend="process"`` propagates pickling errors.
    """
    check_backend(backend)
    tasks = list(tasks)
    workers = min(resolve_n_jobs(n_jobs), len(tasks), effective_cpu_count())
    if workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    chosen = preferred_backend(tasks) if backend == "auto" else backend
    if chosen == "process" and backend == "auto":
        # Phase-2 tasks are pure and idempotent, so if anything in the batch
        # turns out not to pickle the whole fan-out can simply re-run on the
        # thread pool — no wasted up-front probe serialisation of the
        # training data.
        try:
            return parallel_map(_call, tasks, n_jobs=workers, backend="process")
        except (pickle.PicklingError, AttributeError, TypeError):
            chosen = "thread"
    return parallel_map(_call, tasks, n_jobs=workers, backend=chosen)


# ---------------------------------------------------------------------------
# Prediction fan-out: (member x tile) tasks over fitted, read-only models
# ---------------------------------------------------------------------------

def tile_slices(n: int, tile_size: int | None) -> list[slice]:
    """Row slices covering ``[0, n)`` in fixed-size tiles.

    ``None`` means one whole-array tile (the untiled path). A final partial
    tile covers any remainder; ``n == 0`` still yields one empty slice so
    downstream assembly produces correctly-shaped empty outputs.
    """
    if tile_size is None:
        return [slice(0, n)]
    tile_size = int(tile_size)
    if tile_size < 1:
        raise ConfigurationError(f"tile_size must be >= 1, got {tile_size}")
    if n <= 0:
        return [slice(0, 0)]
    return [slice(s, min(s + tile_size, n)) for s in range(0, n, tile_size)]


class PredictTask:
    """One ``(member, tile)`` unit of a prediction fan-out.

    A zero-argument callable invoking ``getattr(model, method)(X_tile)``.
    Models are fitted and read-only, rows are independent, so tasks need no
    phase split; they pickle whenever the model does (``X_tile`` is a view
    that serialises as just the tile). ``backend_hint`` advertises the
    model's :attr:`~repro.ml.base.Classifier.predict_backend_hint`, so the
    ``"auto"`` vote routes GIL-bound members (trees) to the process pool and
    BLAS-heavy members (GPs) to threads — mirroring the fitting fan-out.
    """

    def __init__(self, model, X, method: str = "prediction_stats"):
        self.model = model
        self.X = X
        self.method = method

    @property
    def backend_hint(self) -> str:
        return getattr(self.model, "predict_backend_hint", "thread")

    def __call__(self):
        return getattr(self.model, self.method)(self.X)


def _assemble(chunks: list):
    """Concatenate one model's per-tile results back into full arrays."""
    if len(chunks) == 1:
        return chunks[0]
    if isinstance(chunks[0], tuple):
        return tuple(
            np.concatenate([chunk[i] for chunk in chunks])
            for i in range(len(chunks[0]))
        )
    return np.concatenate(chunks)


def predict_map(
    models: Sequence[object],
    X,
    tile_size: int | None = None,
    n_jobs: int | None = 1,
    backend: str = "auto",
    method: str | Sequence[str] = "prediction_stats",
) -> list:
    """Tiled, parallel prediction over fitted models — bit-identical to serial.

    Schedules one :class:`PredictTask` per ``(model, tile)`` pair through
    :func:`run_deferred` and reassembles each model's tiles in order, so the
    result equals ``[getattr(m, method)(X) for m in models]`` exactly: every
    per-row statistic the package serves (GP latent moments, tree paths,
    bagging member mixtures) is computed row-independently, and tiles are
    concatenated in input order, so neither the tile size nor the pool
    flavour can change a single bit of the output.

    Parameters
    ----------
    models:
        Fitted predictors; each needs the requested ``method``.
    X:
        ``(n, k)`` test rows, tiled along axis 0.
    tile_size:
        Rows per tile (``None`` = one tile). Besides enabling parallelism,
        this bounds per-task transient memory: a GP member touching a tile
        allocates ``O(n_train x tile_size)`` instead of ``O(n_train x n)``.
    n_jobs, backend:
        Pool request, resolved exactly like the fitting fan-out (hint-based
        ``"auto"`` vote, worker clamping, pickling fallback to threads).
        The process pool serialises each task's model per tile — fine for
        the compact packed-array models that vote for it (trees), while
        the BLAS-heavy models that would be expensive to ship vote for
        threads and are shared by reference.
    method:
        Bound-method name to call per task (default ``"prediction_stats"``),
        or one name per model (e.g. mixing ``"mean_member_variance"`` for
        bagging members with ``"predict_variance"`` for plain ones).

    Returns
    -------
    One entry per model: the assembled return value of its ``method``
    (an array, or a tuple of arrays for ``"prediction_stats"``).
    """
    check_backend(backend)
    models = list(models)
    methods = (
        [method] * len(models)
        if isinstance(method, str)
        else [str(m) for m in method]
    )
    if len(methods) != len(models):
        raise ConfigurationError(
            f"got {len(methods)} methods for {len(models)} models"
        )
    X = np.asarray(X)
    slices = tile_slices(X.shape[0], tile_size)
    tasks = [
        PredictTask(model, X[sl], name)
        for model, name in zip(models, methods)
        for sl in slices
    ]
    results = run_deferred(tasks, n_jobs=n_jobs, backend=backend)
    n_tiles = len(slices)
    return [
        _assemble(results[i * n_tiles : (i + 1) * n_tiles])
        for i in range(len(models))
    ]
