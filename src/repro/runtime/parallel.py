"""Thread/process fan-out for model fitting and multi-post planning.

Fitting an iWare-E ensemble is embarrassingly parallel at two levels — one
weak learner per effort threshold, one base classifier per bootstrap — but
every stochastic choice (bootstrap indices, child seeds) must come from the
single master generator in a fixed order, or results stop being
reproducible. The contract used throughout the package is therefore
*two-phase execution*: perform all shared/stateful work serially (draw
randomness, construct members, compute shared surfaces), then fan the pure
per-item calls out through :func:`parallel_map` / :func:`run_deferred`. The
fanned work only touches per-item state, so parallel results are
bit-identical to serial ones — with any backend.

Two pool backends are available, because the fanned workloads split into two
classes:

* ``"thread"`` — right when the heavy lifting happens in GIL-releasing
  native code (GP Cholesky factorisations, kernel products, HiGHS solves).
  Zero serialisation cost; tasks may share state by reference.
* ``"process"`` — right for pure-Python/numpy-dispatch work (decision-tree
  growth, SVM epochs) that the GIL would serialise in a thread pool. Tasks
  cross the process boundary by pickling, so they must be picklable
  (two-phase fit tasks are: phase 1 strips the unpicklable factory
  closures, and fitted models travel back as plain arrays — the same
  representation the npz persistence layer uses).
* ``"auto"`` — inspects the tasks' ``backend_hint`` attributes (see
  :meth:`repro.ml.base.Classifier.fit_backend_hint`) and picks the process
  pool only when every task asks for it; anything that fails to pickle
  falls back to threads rather than erroring.

Worker counts are clamped to the CPUs actually available to this process
(cgroup/affinity aware): oversubscribing a small container with more workers
than cores only adds pool overhead, so ``n_jobs=8`` on a 2-core box runs 2
workers — and on a single core every backend degrades to the plain serial
loop, keeping "parallel" never slower than serial.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Valid ``backend`` arguments accepted throughout the package.
BACKENDS = ("auto", "thread", "process")


def effective_cpu_count() -> int:
    """CPUs usable by this process (respects scheduler affinity masks)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean serial; positive values are taken literally;
    negative values count back from the CPU count (``-1`` = all cores,
    ``-2`` = all but one, ...). Zero is rejected.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ConfigurationError("n_jobs must not be 0 (use 1 for serial)")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got '{backend}'"
        )
    return backend


def _call(task: Callable[[], R]) -> R:
    """Invoke a zero-argument task (module-level so process pools can map it)."""
    return task()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int | None = 1,
    backend: str = "thread",
) -> list[R]:
    """``[fn(x) for x in items]``, optionally through a worker pool.

    Results come back in input order. With ``n_jobs`` of ``None``/``1``,
    fewer than two items, or a single usable CPU, this is a plain list
    comprehension — the serial path has zero overhead and identical
    semantics. ``backend="process"`` requires ``fn`` and every item to be
    picklable (``fn`` should be a module-level function).
    """
    if backend == "auto":
        raise ConfigurationError(
            "parallel_map needs an explicit backend; use run_deferred for "
            "hint-based auto selection"
        )
    check_backend(backend)
    materialised: Sequence[T] = list(items)
    workers = min(
        resolve_n_jobs(n_jobs), len(materialised), effective_cpu_count()
    )
    if workers <= 1 or len(materialised) <= 1:
        return [fn(item) for item in materialised]
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, materialised))
    chunksize = max(1, len(materialised) // (workers * 2))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, materialised, chunksize=chunksize))


def vote_backend(hints: Sequence[str]) -> str:
    """Resolve a pool flavour from per-task backend hints.

    The process pool only pays off when every *substantive* task is
    GIL-bound Python work (a single thread-happy GP fit would serialise
    behind the pickling anyway): ``"process"`` wins iff at least one task
    asks for it and none asks for ``"thread"``. Trivial no-op tasks
    advertise ``"any"`` and do not get a vote; a group of nothing but
    abstainers stays ``"any"`` so it cannot poison an outer vote either.
    """
    votes = [hint for hint in hints if hint != "any"]
    if not votes:
        return "any"
    if all(vote == "process" for vote in votes):
        return "process"
    return "thread"


def preferred_backend(tasks: Sequence[object]) -> str:
    """Resolve ``"auto"`` from the tasks' ``backend_hint`` attributes."""
    result = vote_backend(
        [getattr(task, "backend_hint", "thread") for task in tasks]
    )
    return "process" if result == "process" else "thread"


def run_deferred(
    tasks: Sequence[Callable[[], R]],
    n_jobs: int | None = 1,
    backend: str = "auto",
) -> list[R]:
    """Run phase-2 fit tasks (zero-argument callables), optionally pooled.

    This is the fan-out entry point of the two-phase fit protocol
    (:meth:`repro.ml.base.Classifier.fit_deferred`): phase 1 has already
    drawn all shared randomness serially, so the tasks here are pure and
    order-independent — any backend yields bit-identical results.

    With ``backend="auto"`` the pool is chosen from the tasks'
    ``backend_hint`` attributes, and tasks that turn out not to pickle
    (e.g. closures over live model state) quietly fall back to the thread
    pool. An explicit ``backend="process"`` propagates pickling errors.
    """
    check_backend(backend)
    tasks = list(tasks)
    workers = min(resolve_n_jobs(n_jobs), len(tasks), effective_cpu_count())
    if workers <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    chosen = preferred_backend(tasks) if backend == "auto" else backend
    if chosen == "process" and backend == "auto":
        # Phase-2 tasks are pure and idempotent, so if anything in the batch
        # turns out not to pickle the whole fan-out can simply re-run on the
        # thread pool — no wasted up-front probe serialisation of the
        # training data.
        try:
            return parallel_map(_call, tasks, n_jobs=workers, backend="process")
        except (pickle.PicklingError, AttributeError, TypeError):
            chosen = "thread"
    return parallel_map(_call, tasks, n_jobs=workers, backend=chosen)
