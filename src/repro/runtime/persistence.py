"""Model persistence: npz arrays + a json manifest — crash-safe, checksummed.

A saved model is a directory with two files::

    <path>/manifest.json        # structure: types, config, checksums
    <path>/arrays-<token>.npz   # every numpy array, keyed by manifest refs

The manifest is a nested tree of *nodes*. Each node carries a ``"type"``
naming a registered class, a json-able ``"config"``/scalar payload, and
(optionally) references into the npz file under ``"arrays"``. Nested models
(a :class:`~repro.core.predictor.PawsPredictor` holding an iWare-E ensemble
holding bagging ensembles holding weak learners) recurse naturally: a child
model is just a child node.

Every persistable class implements the two-method protocol::

    def to_manifest(self, store: ArrayStore, prefix: str) -> dict: ...
    @classmethod
    def from_manifest(cls, node: dict, arrays: dict[str, np.ndarray]): ...

and this module provides the packing (:func:`save_model`), unpacking
(:func:`load_model`), and the type registry used to decode child nodes.

Crash safety
------------
A daemon that refits and resaves in place must survive being killed at any
byte of a save. :func:`save_model` therefore never mutates the live
artifacts: the arrays are written to a *content-token-named* file
(``arrays-<sha256 prefix>.npz``, staged as ``.tmp`` and ``os.replace``\\ d
into place), and only then is the manifest — which names that arrays file —
staged and ``os.replace``\\ d over ``manifest.json``. Both files and the
directory are fsync'd, so the single atomic manifest rename is the *commit
point*: a kill before it leaves the old model fully intact (the old
manifest still references the old, untouched arrays file); a kill after it
leaves the new model committed. Stale files (``*.tmp`` staging leftovers,
arrays files no manifest references) are swept only *after* the commit.
The chaos suite (``tests/test_chaos.py``) kills a real save at every
checkpoint in :data:`SAVE_CHECKPOINTS` and asserts exactly this
old-or-new-never-garbage contract.

Integrity
---------
The manifest records a sha256 for the whole arrays file plus one per array
(over dtype + shape + raw bytes). :func:`load_model` verifies them by
default (``verify=True``) and raises :class:`~repro.exceptions.
PersistenceError` naming the exact corrupt artifact — the flipped-bit array,
or the arrays file itself — instead of serving silently wrong predictions
from corrupt bytes. ``verify=False`` skips the hashing for hot reload paths
that trust their storage.

Deliberate non-goals: random-generator state (loaded models serve
predictions, which are deterministic; refitting a loaded ensemble is
rejected because weak-learner factories — closures — cannot be serialised)
and pickle compatibility (no arbitrary code execution on load).
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import time
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import PersistenceError
from repro.runtime import faults

#: Bump when the manifest layout changes incompatibly.
FORMAT_VERSION = 2

#: Formats this build can read: 2 (checksummed, content-token arrays file)
#: and the legacy 1 (plain ``arrays.npz``, no checksums to verify).
SUPPORTED_FORMATS = (1, 2)

MANIFEST_NAME = "manifest.json"
#: Legacy (format 1) arrays file name; format 2 names files by content token.
ARRAYS_NAME = "arrays.npz"

#: The fault-injection checkpoints of one :func:`save_model`, in order. A
#: simulated kill at each one is replayed by the chaos suite; the commit
#: point is the manifest rename between "save:manifest-written" and
#: "save:committed".
SAVE_CHECKPOINTS = (
    "save:start",
    "save:arrays-written",
    "save:arrays-committed",
    "save:manifest-written",
    "save:committed",
)


class ArrayStore:
    """Collects named arrays during encoding; written out as one npz."""

    def __init__(self) -> None:
        self.arrays: dict[str, np.ndarray] = {}

    def put(self, key: str, array: np.ndarray) -> str:
        """Register ``array`` under ``key`` and return the key (a manifest ref)."""
        if key in self.arrays:
            raise PersistenceError(f"duplicate array key '{key}'")
        self.arrays[key] = np.asarray(array)
        return key


def get_array(arrays: dict[str, np.ndarray], key: str) -> np.ndarray:
    """Fetch a manifest-referenced array, with a clear error when absent."""
    try:
        return arrays[key]
    except KeyError:
        raise PersistenceError(
            f"manifest references missing array '{key}'"
        ) from None


# ---------------------------------------------------------------------------
# Type registry
# ---------------------------------------------------------------------------
def _registry() -> dict[str, type]:
    """Name -> class map of everything that can appear as a manifest node.

    Imported lazily so this module stays importable from the bottom of the
    package (``repro.ml`` modules import it for their ``save`` methods).
    """
    from repro.core.ensemble import IWareEnsemble
    from repro.core.predictor import PawsPredictor
    from repro.ml.bagging import BaggingClassifier, BalancedBaggingClassifier
    from repro.ml.base import ConstantClassifier
    from repro.ml.gp import GaussianProcessClassifier
    from repro.ml.linear import LogisticRegression, PUWeightedLogisticRegression
    from repro.ml.svm import LinearSVMClassifier
    from repro.ml.tree import DecisionTreeClassifier

    classes = (
        ConstantClassifier,
        DecisionTreeClassifier,
        LinearSVMClassifier,
        GaussianProcessClassifier,
        LogisticRegression,
        PUWeightedLogisticRegression,
        BaggingClassifier,
        BalancedBaggingClassifier,
        IWareEnsemble,
        PawsPredictor,
    )
    return {cls.__name__: cls for cls in classes}


def decode_node(node: dict, arrays: dict[str, np.ndarray]) -> Any:
    """Rebuild the object a manifest node describes (recursing via the class)."""
    if not isinstance(node, dict) or "type" not in node:
        raise PersistenceError(f"malformed manifest node: {node!r}")
    cls = _registry().get(node["type"])
    if cls is None:
        raise PersistenceError(f"unknown model type '{node['type']}' in manifest")
    return cls.from_manifest(node, arrays)


# ---------------------------------------------------------------------------
# Inline helpers for non-model components (scalers, calibrators, kernels)
# ---------------------------------------------------------------------------
def encode_standard_scaler(scaler, store: ArrayStore, prefix: str) -> dict:
    """Inline node for a fitted :class:`~repro.ml.scaling.StandardScaler`."""
    if scaler.mean_ is None or scaler.scale_ is None:
        raise PersistenceError("cannot persist an unfitted StandardScaler")
    return {
        "mean": store.put(f"{prefix}/scaler_mean", scaler.mean_),
        "scale": store.put(f"{prefix}/scaler_scale", scaler.scale_),
    }


def decode_standard_scaler(node: dict, arrays: dict[str, np.ndarray]):
    from repro.ml.scaling import StandardScaler

    scaler = StandardScaler()
    scaler.mean_ = get_array(arrays, node["mean"]).astype(float)
    scaler.scale_ = get_array(arrays, node["scale"]).astype(float)
    return scaler


def encode_kernel(kernel) -> dict:
    """Inline node for an RBF / Matern kernel (parameters only)."""
    from repro.ml.kernels import MaternKernel, RBFKernel

    if isinstance(kernel, RBFKernel):
        kind = "rbf"
    elif isinstance(kernel, MaternKernel):
        kind = "matern"
    else:
        raise PersistenceError(f"cannot persist kernel {type(kernel).__name__}")
    return {
        "kind": kind,
        "lengthscale": kernel.lengthscale,
        "variance": kernel.variance,
    }


def decode_kernel(node: dict):
    from repro.ml.kernels import MaternKernel, RBFKernel

    kinds = {"rbf": RBFKernel, "matern": MaternKernel}
    if node["kind"] not in kinds:
        raise PersistenceError(f"unknown kernel kind '{node['kind']}'")
    return kinds[node["kind"]](
        lengthscale=node["lengthscale"], variance=node["variance"]
    )


# ---------------------------------------------------------------------------
# Checksums and durable writes
# ---------------------------------------------------------------------------
def array_sha256(array: np.ndarray) -> str:
    """sha256 over an array's dtype, shape, and raw bytes.

    Covering dtype and shape means a corrupt manifest cannot silently
    reinterpret the same bytes as a differently-shaped array.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(repr(tuple(array.shape)).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def file_sha256(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """sha256 of a file's bytes, read in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _write_durable(path: Path, payload: bytes) -> None:
    """Write bytes and fsync so the data is on disk before any rename."""
    with open(path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


#: Per-process staging serial, so two saver *threads* in one process never
#: collide on a staging name (itertools.count is atomic under the GIL).
_STAGING_COUNTER = itertools.count()


def _staging_suffix() -> str:
    """A ``<pid>-<serial>.tmp`` suffix unique to this save in this process."""
    return f"{os.getpid()}-{next(_STAGING_COUNTER)}.tmp"


def _staging_pid(name: str) -> int | None:
    """The saver pid embedded in a ``<base>.<pid>-<serial>.tmp`` name."""
    parts = name.split(".")
    if len(parts) >= 3 and parts[-1] == "tmp":
        try:
            return int(parts[-2].split("-")[0])
        except ValueError:
            return None
    return None


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; no signal is delivered)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - e.g. PermissionError: exists
        return True
    return True


@contextmanager
def _save_lock(path: Path):
    """Serialize whole saves into one directory across threads *and* pids.

    Two unserialized racing saves can interleave commit and sweep so that
    one deletes arrays the other's manifest is about to (or just did)
    reference. The lock is a pid-stamped ``O_CREAT | O_EXCL`` file —
    atomic across processes, the same idiom as the fault harness's
    once-markers — held from the first staged byte through the post-commit
    sweep. A lock left behind by a dead saver (a real kill cannot run the
    ``finally``) is detected by pid liveness and broken.
    """
    lock = path / ".save.lock"
    while True:
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            try:
                holder = int(lock.read_text().strip() or "0")
            except (OSError, ValueError):
                holder = None  # mid-write or just released; retry
            if holder is not None and not _pid_alive(holder):
                try:
                    lock.unlink()  # stale lock from a dead saver
                except OSError:  # pragma: no cover - concurrent breaker
                    pass
            time.sleep(0.01)
    try:
        try:
            os.write(fd, str(os.getpid()).encode())
        finally:
            # Close even when the pid-stamp write fails (ENOSPC): the
            # descriptor must not outlive the lock attempt.
            os.close(fd)
        yield
    finally:
        try:
            os.unlink(lock)
        except OSError:  # pragma: no cover - lock broken under us
            pass


def _sweep_stale(path: Path, keep_arrays: str) -> None:
    """Remove staging leftovers and arrays files no manifest names.

    Only called *after* the manifest commit. Two racing savers into one
    directory must not destroy each other's work, so the sweep is
    conservative on both fronts:

    * ``*.tmp`` staging files carry their saver's pid
      (``<base>.<pid>.tmp``); another *live* process's staging files are
      left alone — only our own and dead savers' leftovers are swept;
    * the committed manifest is re-read *at sweep time* and its
      ``arrays_file`` is kept alongside our own ``keep_arrays``, so a
      racing save that committed after us cannot have its arrays deleted
      by our (now stale) notion of the winner.

    Removal failures are ignored: stale files are garbage, not state.
    """
    keep = {keep_arrays}
    try:
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        committed = manifest.get("arrays_file")
        if committed:
            keep.add(str(committed))
    except (OSError, json.JSONDecodeError):  # pragma: no cover - racing save
        pass  # unreadable manifest mid-race; keep only our own arrays
    own_pid = os.getpid()
    for stale in path.glob("*.tmp"):
        pid = _staging_pid(stale.name)
        if pid is not None and pid != own_pid and _pid_alive(pid):
            continue  # a live concurrent saver's staging file; not garbage
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - concurrent sweep
            pass
    for stale in path.glob("arrays*.npz"):
        if stale.name not in keep:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent sweep
                pass


# ---------------------------------------------------------------------------
# Top-level save / load
# ---------------------------------------------------------------------------
def save_model(model, path: str | Path) -> Path:
    """Persist a fitted model to ``path`` (a directory, created if needed).

    Returns the directory path. Any object implementing the manifest
    protocol can be saved: individual classifiers, iWare-E ensembles, or a
    whole :class:`~repro.core.predictor.PawsPredictor`.

    The save is crash-safe (see module docs): artifacts are staged and
    atomically renamed, with the fsync'd ``manifest.json`` rename as the
    commit point, so a kill at any byte leaves the previous model (if any)
    or the new one — never a half-written hybrid.
    """
    from repro import __version__

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    faults.checkpoint("save:start")

    store = ArrayStore()
    node = model.to_manifest(store, "model")
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **store.arrays)
    payload = buffer.getvalue()
    file_digest = hashlib.sha256(payload).hexdigest()

    # Content-token file name: a resave of identical arrays maps to the
    # same file (idempotent), a different fit to a different file — so the
    # old manifest's reference stays valid until the new manifest commits.
    # Racing saves into one directory are serialized end to end (staged
    # bytes through post-commit sweep) by the save lock, so the directory
    # always holds one complete old-or-new model and no sweep can delete
    # arrays a racing winner's manifest references. Staging names carry a
    # per-save pid+serial suffix as defense in depth, so even an
    # unserialized writer cannot truncate a half-written staging file
    # (the committed names stay suffix-free; the manifest rename is still
    # the commit point).
    with _save_lock(path):
        arrays_name = f"arrays-{file_digest[:16]}.npz"
        arrays_tmp = path / f"{arrays_name}.{_staging_suffix()}"
        _write_durable(arrays_tmp, payload)
        faults.checkpoint("save:arrays-written")
        os.replace(arrays_tmp, path / arrays_name)
        _fsync_dir(path)
        faults.checkpoint("save:arrays-committed")

        manifest = {
            "format_version": FORMAT_VERSION,
            "repro_version": __version__,
            "arrays_file": arrays_name,
            "checksums": {
                "file_sha256": file_digest,
                "arrays": {
                    key: array_sha256(array)
                    for key, array in sorted(store.arrays.items())
                },
            },
            "model": node,
        }
        manifest_tmp = path / f"{MANIFEST_NAME}.{_staging_suffix()}"
        _write_durable(
            manifest_tmp,
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
        )
        faults.checkpoint("save:manifest-written")
        os.replace(manifest_tmp, path / MANIFEST_NAME)  # <-- the commit point
        _fsync_dir(path)
        faults.checkpoint("save:committed")

        _sweep_stale(path, keep_arrays=arrays_name)
    return path


def _load_arrays(arrays_path: Path) -> dict[str, np.ndarray]:
    """Read every array in an npz, wrapping I/O-layer failures.

    A truncated or bit-flipped npz surfaces from :func:`np.load` as raw
    ``zipfile.BadZipFile`` / ``ValueError`` / ``OSError``; the RP002
    contract (callers catch :class:`~repro.exceptions.ReproError`, nothing
    else) must hold at the I/O boundary too, so they are rethrown as
    :class:`PersistenceError` naming the file.
    """
    try:
        with np.load(arrays_path) as data:
            return {key: data[key] for key in data.files}
    except FileNotFoundError:
        raise PersistenceError(
            f"missing arrays file '{arrays_path}' (referenced by the "
            "manifest but absent on disk)"
        ) from None
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        raise PersistenceError(
            f"corrupt arrays file '{arrays_path}': {exc}"
        ) from exc


def _verify_arrays(
    path: Path,
    arrays_path: Path,
    arrays: dict[str, np.ndarray],
    checksums: dict,
    file_digest_ok: bool,
) -> None:
    """Raise :class:`PersistenceError` naming the exact corrupt artifact."""
    expected = checksums.get("arrays") or {}
    for key in sorted(expected):
        if key not in arrays:
            raise PersistenceError(
                f"corrupt model in '{path}': array '{key}' is missing from "
                f"'{arrays_path.name}'"
            )
        if array_sha256(arrays[key]) != expected[key]:
            raise PersistenceError(
                f"corrupt model in '{path}': array '{key}' in "
                f"'{arrays_path.name}' fails its sha256 checksum"
            )
    if not file_digest_ok:
        # Every individual array decompressed to its recorded hash, yet the
        # file bytes differ from the manifest's — zip metadata corruption.
        raise PersistenceError(
            f"corrupt model in '{path}': arrays file '{arrays_path.name}' "
            "fails its whole-file sha256 checksum"
        )


def load_model(
    path: str | Path,
    expected_type: type | None = None,
    verify: bool = True,
) -> Any:
    """Load a model saved by :func:`save_model`.

    Parameters
    ----------
    path:
        The saved-model directory.
    expected_type:
        When given, the decoded object must be an instance of it (used by
        the per-class ``load`` classmethods so ``PawsPredictor.load`` cannot
        silently hand back a bare tree).
    verify:
        Verify the manifest's sha256 checksums (whole arrays file + every
        array) before decoding, raising :class:`PersistenceError` naming
        the exact corrupt artifact. On by default; pass ``False`` to skip
        the hashing when the storage is trusted. Legacy format-1 saves
        carry no checksums, so there is nothing to verify beyond structure.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(
            f"'{path}' is not a saved model (expected {MANIFEST_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"corrupt manifest in '{path}': {exc}") from exc
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMATS:
        raise PersistenceError(
            f"unsupported model format {version!r} (this build reads "
            f"{list(SUPPORTED_FORMATS)})"
        )
    arrays_name = manifest.get("arrays_file", ARRAYS_NAME)
    arrays_path = path / arrays_name
    if not arrays_path.is_file():
        raise PersistenceError(
            f"'{path}' is missing its arrays file '{arrays_name}' "
            f"(expected at '{arrays_path}')"
        )
    checksums = manifest.get("checksums") or {}
    file_digest_ok = True
    # The pre-check above can race a concurrent sweep (TOCTOU): the file
    # may vanish between is_file() and the reads below, so the hashing
    # wraps FileNotFoundError into the same artifact-naming PersistenceError.
    if verify and checksums.get("file_sha256"):
        try:
            file_digest_ok = (
                file_sha256(arrays_path) == checksums["file_sha256"]
            )
        except FileNotFoundError:
            raise PersistenceError(
                f"missing arrays file '{arrays_path}' (referenced by the "
                "manifest but absent on disk)"
            ) from None
    arrays = _load_arrays(arrays_path)
    if verify and checksums:
        _verify_arrays(path, arrays_path, arrays, checksums, file_digest_ok)
    model = decode_node(manifest["model"], arrays)
    if expected_type is not None and not isinstance(model, expected_type):
        raise PersistenceError(
            f"'{path}' contains a {type(model).__name__}, "
            f"not a {expected_type.__name__}"
        )
    return model
