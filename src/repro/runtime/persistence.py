"""Model persistence: npz arrays + a json manifest.

A saved model is a directory with two files::

    <path>/manifest.json   # structure: types, config, scalar state
    <path>/arrays.npz      # every numpy array, keyed by manifest references

The manifest is a nested tree of *nodes*. Each node carries a ``"type"``
naming a registered class, a json-able ``"config"``/scalar payload, and
(optionally) references into the npz file under ``"arrays"``. Nested models
(a :class:`~repro.core.predictor.PawsPredictor` holding an iWare-E ensemble
holding bagging ensembles holding weak learners) recurse naturally: a child
model is just a child node.

Every persistable class implements the two-method protocol::

    def to_manifest(self, store: ArrayStore, prefix: str) -> dict: ...
    @classmethod
    def from_manifest(cls, node: dict, arrays: dict[str, np.ndarray]): ...

and this module provides the packing (:func:`save_model`), unpacking
(:func:`load_model`), and the type registry used to decode child nodes.

Deliberate non-goals: random-generator state (loaded models serve
predictions, which are deterministic; refitting a loaded ensemble is
rejected because weak-learner factories — closures — cannot be serialised)
and pickle compatibility (no arbitrary code execution on load).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import PersistenceError

#: Bump when the manifest layout changes incompatibly.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"


class ArrayStore:
    """Collects named arrays during encoding; written out as one npz."""

    def __init__(self) -> None:
        self.arrays: dict[str, np.ndarray] = {}

    def put(self, key: str, array: np.ndarray) -> str:
        """Register ``array`` under ``key`` and return the key (a manifest ref)."""
        if key in self.arrays:
            raise PersistenceError(f"duplicate array key '{key}'")
        self.arrays[key] = np.asarray(array)
        return key


def get_array(arrays: dict[str, np.ndarray], key: str) -> np.ndarray:
    """Fetch a manifest-referenced array, with a clear error when absent."""
    try:
        return arrays[key]
    except KeyError:
        raise PersistenceError(
            f"manifest references missing array '{key}'"
        ) from None


# ---------------------------------------------------------------------------
# Type registry
# ---------------------------------------------------------------------------
def _registry() -> dict[str, type]:
    """Name -> class map of everything that can appear as a manifest node.

    Imported lazily so this module stays importable from the bottom of the
    package (``repro.ml`` modules import it for their ``save`` methods).
    """
    from repro.core.ensemble import IWareEnsemble
    from repro.core.predictor import PawsPredictor
    from repro.ml.bagging import BaggingClassifier, BalancedBaggingClassifier
    from repro.ml.base import ConstantClassifier
    from repro.ml.gp import GaussianProcessClassifier
    from repro.ml.linear import LogisticRegression, PUWeightedLogisticRegression
    from repro.ml.svm import LinearSVMClassifier
    from repro.ml.tree import DecisionTreeClassifier

    classes = (
        ConstantClassifier,
        DecisionTreeClassifier,
        LinearSVMClassifier,
        GaussianProcessClassifier,
        LogisticRegression,
        PUWeightedLogisticRegression,
        BaggingClassifier,
        BalancedBaggingClassifier,
        IWareEnsemble,
        PawsPredictor,
    )
    return {cls.__name__: cls for cls in classes}


def decode_node(node: dict, arrays: dict[str, np.ndarray]) -> Any:
    """Rebuild the object a manifest node describes (recursing via the class)."""
    if not isinstance(node, dict) or "type" not in node:
        raise PersistenceError(f"malformed manifest node: {node!r}")
    cls = _registry().get(node["type"])
    if cls is None:
        raise PersistenceError(f"unknown model type '{node['type']}' in manifest")
    return cls.from_manifest(node, arrays)


# ---------------------------------------------------------------------------
# Inline helpers for non-model components (scalers, calibrators, kernels)
# ---------------------------------------------------------------------------
def encode_standard_scaler(scaler, store: ArrayStore, prefix: str) -> dict:
    """Inline node for a fitted :class:`~repro.ml.scaling.StandardScaler`."""
    if scaler.mean_ is None or scaler.scale_ is None:
        raise PersistenceError("cannot persist an unfitted StandardScaler")
    return {
        "mean": store.put(f"{prefix}/scaler_mean", scaler.mean_),
        "scale": store.put(f"{prefix}/scaler_scale", scaler.scale_),
    }


def decode_standard_scaler(node: dict, arrays: dict[str, np.ndarray]):
    from repro.ml.scaling import StandardScaler

    scaler = StandardScaler()
    scaler.mean_ = get_array(arrays, node["mean"]).astype(float)
    scaler.scale_ = get_array(arrays, node["scale"]).astype(float)
    return scaler


def encode_kernel(kernel) -> dict:
    """Inline node for an RBF / Matern kernel (parameters only)."""
    from repro.ml.kernels import MaternKernel, RBFKernel

    if isinstance(kernel, RBFKernel):
        kind = "rbf"
    elif isinstance(kernel, MaternKernel):
        kind = "matern"
    else:
        raise PersistenceError(f"cannot persist kernel {type(kernel).__name__}")
    return {
        "kind": kind,
        "lengthscale": kernel.lengthscale,
        "variance": kernel.variance,
    }


def decode_kernel(node: dict):
    from repro.ml.kernels import MaternKernel, RBFKernel

    kinds = {"rbf": RBFKernel, "matern": MaternKernel}
    if node["kind"] not in kinds:
        raise PersistenceError(f"unknown kernel kind '{node['kind']}'")
    return kinds[node["kind"]](
        lengthscale=node["lengthscale"], variance=node["variance"]
    )


# ---------------------------------------------------------------------------
# Top-level save / load
# ---------------------------------------------------------------------------
def save_model(model, path: str | Path) -> Path:
    """Persist a fitted model to ``path`` (a directory, created if needed).

    Returns the directory path. Any object implementing the manifest
    protocol can be saved: individual classifiers, iWare-E ensembles, or a
    whole :class:`~repro.core.predictor.PawsPredictor`.
    """
    from repro import __version__

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    store = ArrayStore()
    node = model.to_manifest(store, "model")
    manifest = {
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "model": node,
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    np.savez_compressed(path / ARRAYS_NAME, **store.arrays)
    return path


def load_model(path: str | Path, expected_type: type | None = None) -> Any:
    """Load a model saved by :func:`save_model`.

    Parameters
    ----------
    path:
        The saved-model directory.
    expected_type:
        When given, the decoded object must be an instance of it (used by
        the per-class ``load`` classmethods so ``PawsPredictor.load`` cannot
        silently hand back a bare tree).
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    arrays_path = path / ARRAYS_NAME
    if not manifest_path.is_file() or not arrays_path.is_file():
        raise PersistenceError(
            f"'{path}' is not a saved model (expected {MANIFEST_NAME} "
            f"and {ARRAYS_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"corrupt manifest in '{path}': {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported model format {version!r} (this build reads "
            f"{FORMAT_VERSION})"
        )
    with np.load(arrays_path) as data:
        arrays = {key: data[key] for key in data.files}
    model = decode_node(manifest["model"], arrays)
    if expected_type is not None and not isinstance(model, expected_type):
        raise PersistenceError(
            f"'{path}' contains a {type(model).__name__}, "
            f"not a {expected_type.__name__}"
        )
    return model
