"""The park-service daemon: fit once, serve forever, die gracefully.

ROADMAP item 1: deployed PAWS installations (Section VII) need risk maps
and patrol plans *served*, not re-fit — one long-running process fronting
many parks and many clients. :class:`ParkServiceDaemon` assembles the
runtime substrate into that process, stdlib only
(:class:`http.server.ThreadingHTTPServer` + ``json``):

* a :class:`~repro.runtime.registry.ModelRegistry` loads saved models
  lazily (checksum-verified, LRU-budgeted) and hot-swaps them atomically
  on ``POST /models/<park>/reload``;
* an :class:`~repro.runtime.admission.AdmissionGate` bounds concurrency —
  overflow is shed with ``503 + Retry-After`` instead of queueing
  unboundedly, and every admitted request runs under a server-default or
  client-supplied :class:`~repro.runtime.resilience.Deadline` (overrun =
  ``504``);
* per-park :class:`~repro.runtime.breaker.CircuitBreaker` pairs flag
  repeatedly failing loads and crashing pools on ``/health`` and steer
  dispatch onto the degraded thread rung until a probe recovers;
* SIGTERM triggers a **graceful drain**: stop admitting, let in-flight
  requests finish (or deadline out), flush the accumulated
  ``resilience_info()`` counters, exit 0.

Endpoints (all JSON)::

    GET  /riskmap?park=MFNP[&effort=][&seed=][&scale=][&deadline=]
    GET  /plan?park=MFNP[&beta=][&post=][&seed=][&scale=][&deadline=]
    GET  /health        GET /ready        GET /stats
    POST /models/<park>/reload

Responses carry float64 values through ``repr``-round-tripping JSON, so an
admitted ``/riskmap`` body is **bit-identical** to the direct library
call's array — the chaos suite asserts exactly that.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.exceptions import (
    AdmissionError,
    CircuitOpenError,
    ConfigurationError,
    DataError,
    DeadlineExceededError,
    PersistenceError,
    ReproError,
)
from repro.runtime import faults
from repro.runtime.admission import AdmissionGate
from repro.runtime.registry import ModelRegistry
from repro.runtime.resilience import Deadline, deadline_scope

#: Seconds clients are told to back off when shed or refused (Retry-After).
RETRY_AFTER = 1


def _json_default(value):
    """Serialize the numpy scalars that leak into payload dicts."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(  # repro: ignore[RP002] -- json.dumps contract
        f"unserializable {type(value).__name__} in response payload"
    )


def plan_payload(plan) -> dict:
    """A :class:`~repro.planning.planner.PatrolPlan` as a JSON-able dict."""
    return {
        "objective_value": float(plan.objective_value),
        "beta": float(plan.beta),
        "coverage": plan.coverage.tolist(),
        "routes": [
            {"cells": [int(c) for c in route.cells],
             "weight": float(route.weight)}
            for route in plan.routes
        ],
        "status": plan.solution.status,
        "method": plan.solution.method,
    }


class _HTTPError(ReproError):
    """Internal: carry an HTTP status + payload up to the handler."""

    def __init__(self, status: int, payload: dict, headers: dict | None = None):
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP skin; all logic lives on the daemon (``server.daemon_ref``)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-park-service"

    # Quiet by default: one line per request on stderr only when verbose.
    def log_message(self, fmt, *args):  # noqa: A002 - stdlib signature
        daemon = getattr(self.server, "daemon_ref", None)
        if daemon is not None and daemon.verbose:
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), fmt % args)
            )

    def do_GET(self):  # noqa: N802 - stdlib dispatch name
        self.server.daemon_ref.dispatch(self, "GET")

    def do_POST(self):  # noqa: N802 - stdlib dispatch name
        self.server.daemon_ref.dispatch(self, "POST")


class _Server(ThreadingHTTPServer):
    """Per-connection threads, and a listen backlog sized for bursts.

    ``socketserver``'s default backlog of 5 drops SYNs under a concurrent
    connection burst; the kernel's 1 s retransmit then shows up as a
    mysterious tail-latency cliff. Admission control — not the accept
    queue — is where this daemon sheds load, so the backlog stays large.
    """

    daemon_threads = True
    request_queue_size = 128


class ParkServiceDaemon:
    """One process serving risk maps and patrol plans for many parks.

    Parameters
    ----------
    models_dir:
        Root of saved models (one ``save_model`` directory per park).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see :attr:`port`
        after :meth:`start`).
    max_inflight, max_queue, queue_wait:
        Admission limits (see :class:`~repro.runtime.admission.AdmissionGate`).
    default_deadline:
        Per-request budget (seconds) when the client sends none. ``None``
        disables the server-side default.
    drain_timeout:
        Longest :meth:`drain` waits for in-flight requests before giving up
        (they are deadline-bounded anyway, so this is a backstop).
    registry_options:
        Extra keyword arguments for the
        :class:`~repro.runtime.registry.ModelRegistry` (``max_parks``,
        ``tile_size``, ``n_jobs``, ``backend``...).
    verbose:
        Log one line per request to stderr.
    """

    def __init__(
        self,
        models_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 8,
        max_queue: int = 16,
        queue_wait: float = 0.5,
        default_deadline: float | None = 30.0,
        drain_timeout: float = 30.0,
        registry_options: dict | None = None,
        verbose: bool = False,
    ):
        if default_deadline is not None and float(default_deadline) <= 0.0:
            raise ConfigurationError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        self.registry = ModelRegistry(models_dir, **(registry_options or {}))
        self.gate = AdmissionGate(
            max_inflight=max_inflight, max_queue=max_queue,
            queue_wait=queue_wait,
        )
        self.host = host
        self.requested_port = int(port)
        self.default_deadline = (
            None if default_deadline is None else float(default_deadline)
        )
        self.drain_timeout = float(drain_timeout)
        self.verbose = bool(verbose)
        self._server: ThreadingHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._drained = threading.Event()
        self._drain_lock = threading.Lock()
        self._final_stats: dict | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    def start(self) -> "ParkServiceDaemon":
        """Bind and serve on a background thread; returns immediately."""
        if self._server is not None:
            raise ConfigurationError("the daemon is already started")
        server = _Server((self.host, self.requested_port), _Handler)
        server.daemon_ref = self
        self._server = server
        self._serve_thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            name="park-service", daemon=True,
        )
        self._serve_thread.start()
        return self

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to :meth:`drain` (main thread only)."""

        def handle(signum, frame):
            # Drain on a separate thread: signal handlers run on the main
            # thread, which run_forever() is blocking.
            threading.Thread(
                target=self.drain, name="park-service-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, handle)
        signal.signal(signal.SIGINT, handle)

    def run_forever(self) -> int:
        """Serve until drained (the CLI entry point); returns exit code 0."""
        if self._server is None:
            self.start()
        self.install_signal_handlers()
        self._drained.wait()
        return 0

    def drain(self) -> dict:
        """Graceful shutdown: shed new work, finish in-flight, flush stats.

        Idempotent; returns the final stats snapshot. Sequence: the gate
        stops admitting (new arrivals and queued waiters shed with 503),
        in-flight requests run to completion (their own deadlines bound
        them; ``drain_timeout`` is the backstop), the listener closes, and
        the accumulated resilience counters are flushed to stderr.
        """
        with self._drain_lock:
            if self._final_stats is not None:
                return self._final_stats
            self.gate.begin_drain()
            self.gate.wait_idle(timeout=self.drain_timeout)
            if self._server is not None:
                self._server.shutdown()
                self._server.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=5.0)
            stats = self.stats_payload()
            self._final_stats = stats
            sys.stderr.write(
                "park-service drained: "
                + json.dumps(stats, default=_json_default)
                + "\n"
            )
            self._drained.set()
            return stats

    def close(self) -> None:
        """Tear down without the drain ceremony (tests' cleanup path)."""
        if self._final_stats is None:
            self.gate.begin_drain()
            if self._server is not None:
                self._server.shutdown()
                self._server.server_close()
            self._drained.set()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def dispatch(self, handler: _Handler, method: str) -> None:
        """Route one HTTP request; all responses (and errors) are JSON."""
        split = urlsplit(handler.path)
        route = split.path.rstrip("/") or "/"
        params = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        try:
            status, payload, headers = self._route(method, route, params)
        except _HTTPError as exc:
            status, payload, headers = exc.status, exc.payload, exc.headers
        except AdmissionError as exc:
            status = 503
            payload = {"error": str(exc), "kind": "AdmissionError"}
            headers = {"Retry-After": str(RETRY_AFTER)}
        except CircuitOpenError as exc:
            status = 503
            payload = {"error": str(exc), "kind": "CircuitOpenError"}
            headers = {"Retry-After": str(RETRY_AFTER)}
        except DeadlineExceededError as exc:
            status = 504
            payload = {"error": str(exc), "kind": "DeadlineExceededError"}
            headers = {}
        except (ConfigurationError, DataError) as exc:
            status = 400
            payload = {"error": str(exc), "kind": type(exc).__name__}
            headers = {}
        except ReproError as exc:
            status = 500
            payload = {"error": str(exc), "kind": type(exc).__name__}
            headers = {}
        except Exception as exc:
            status = 500
            payload = {"error": str(exc), "kind": type(exc).__name__}
            headers = {}
        self._respond(handler, status, payload, headers)

    @staticmethod
    def _respond(handler, status: int, payload: dict, headers: dict) -> None:
        body = json.dumps(payload, default=_json_default).encode()
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                handler.send_header(name, value)
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up; nothing useful to do

    def _route(self, method: str, route: str, params: dict):
        if method == "GET":
            if route == "/riskmap":
                return self._admitted_request(
                    "riskmap", params, self._handle_riskmap
                )
            if route == "/plan":
                return self._admitted_request(
                    "plan", params, self._handle_plan
                )
            if route == "/health":
                return self._handle_health()
            if route == "/ready":
                return self._handle_ready()
            if route == "/stats":
                return 200, self.stats_payload(), {}
        elif method == "POST":
            parts = route.strip("/").split("/")
            if len(parts) == 3 and parts[0] == "models" and parts[2] == "reload":
                return self._admitted_request(
                    "reload", params,
                    lambda p, deadline: self._handle_reload(
                        parts[1], deadline
                    ),
                )
        raise _HTTPError(
            404 if method in ("GET", "POST") else 405,
            {"error": f"no route for {method} {route}",
             "routes": ["/riskmap", "/plan", "/health", "/ready", "/stats",
                        "/models/<park>/reload"]},
        )

    def _admitted_request(self, label: str, params: dict, handle):
        """Admission + deadline envelope shared by the work endpoints."""
        deadline = self._deadline_from(params)
        with self.gate.admitted(deadline=deadline, label=label):
            with deadline_scope(deadline):
                # Inside the admission envelope on purpose: an injected
                # slow request holds its slot, which is exactly what the
                # flood and drain chaos tests need to be deterministic.
                faults.on_request(label)
                return handle(params, deadline)

    def _deadline_from(self, params: dict) -> Deadline | None:
        raw = params.get("deadline")
        if raw is None:
            seconds = self.default_deadline
        else:
            try:
                seconds = float(raw)
            except ValueError:
                raise _HTTPError(
                    400, {"error": f"deadline must be a number, got '{raw}'"}
                ) from None
            if seconds <= 0.0:
                raise _HTTPError(
                    400,
                    {"error": "deadline must be positive seconds, got "
                              f"{raw}"},
                )
        return None if seconds is None else Deadline.resolve(seconds)

    @staticmethod
    def _param(params: dict, name: str, cast, default):
        raw = params.get(name)
        if raw is None:
            return default
        try:
            return cast(raw)
        except (TypeError, ValueError):
            raise _HTTPError(
                400, {"error": f"invalid value for '{name}': '{raw}'"}
            ) from None

    def _park_entry(self, params: dict, deadline=None):
        park = params.get("park")
        if not park:
            raise _HTTPError(
                400,
                {"error": "missing required query parameter 'park'",
                 "available": self.registry.available()},
            )
        if not self.registry.has_model(park):
            raise _HTTPError(
                404,
                {"error": f"no saved model for park '{park}'",
                 "available": self.registry.available()},
            )
        return self.registry.entry(park, deadline=deadline)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _handle_riskmap(self, params: dict, deadline):
        entry = self._park_entry(params, deadline)
        effort = self._param(params, "effort", float, None)
        seed = self._param(params, "seed", int, 0)
        scale = self._param(params, "scale", float, 1.0)
        risk = entry.risk_map(
            effort=effort, seed=seed, scale=scale, deadline=deadline
        )
        return 200, {
            "park": entry.name,
            "version": entry.version,
            "effort": effort,
            "seed": seed,
            "scale": scale,
            "n_cells": int(risk.shape[0]),
            "risk": risk.tolist(),
        }, {}

    def _handle_plan(self, params: dict, deadline):
        entry = self._park_entry(params, deadline)
        beta = self._param(params, "beta", float, 0.8)
        post = self._param(params, "post", int, None)
        seed = self._param(params, "seed", int, 0)
        scale = self._param(params, "scale", float, 1.0)
        plans = entry.plan(
            beta=beta, post=post, seed=seed, scale=scale, deadline=deadline
        )
        return 200, {
            "park": entry.name,
            "version": entry.version,
            "beta": beta,
            "seed": seed,
            "scale": scale,
            "plans": {
                str(number): plan_payload(plan)
                for number, plan in sorted(plans.items())
            },
        }, {}

    def _handle_reload(self, park: str, deadline=None):
        if not self.registry.has_model(park):
            raise _HTTPError(
                404,
                {"error": f"no saved model for park '{park}'",
                 "available": self.registry.available()},
            )
        try:
            entry = self.registry.reload(park, deadline=deadline)
        except PersistenceError as exc:
            # The artifact was rejected; the old model keeps serving.
            raise _HTTPError(
                409,
                {"error": str(exc), "kind": "PersistenceError",
                 "park": park, "serving": park in self.registry.loaded()},
            ) from exc
        return 200, {
            "park": park,
            "version": entry.version,
            "reloaded": True,
        }, {}

    def _handle_health(self):
        parks = self.registry.park_health()
        degraded = sorted(
            name for name, flags in parks.items() if not flags["ok"]
        )
        healthy = not degraded and not self.gate.draining
        payload = {
            "status": "ok" if healthy else "degraded",
            "draining": self.gate.draining,
            "degraded_parks": degraded,
            "parks": parks,
        }
        return (200 if healthy else 503), payload, (
            {} if healthy else {"Retry-After": str(RETRY_AFTER)}
        )

    def _handle_ready(self):
        if self.gate.draining:
            return 503, {"ready": False, "draining": True}, {
                "Retry-After": str(RETRY_AFTER)
            }
        return 200, {
            "ready": True,
            "parks": self.registry.available(),
        }, {}

    def stats_payload(self) -> dict:
        """The ``/stats`` body: admission, registry, and per-park counters."""
        return {
            "admission": self.gate.info(),
            "registry": self.registry.info(),
            "parks": self.registry.stats(),
        }
