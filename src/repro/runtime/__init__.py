"""The serving layer: batched prediction, parallel fitting, persistence.

The predictive stage (``repro.core``) answers one question at a time; this
package turns it into a serving engine for the deployment workloads of
Section VII:

* :mod:`repro.runtime.parallel` — two-phase (seed-serial, fit-parallel)
  pool fan-out used by bagging and iWare-E fitting, plus the tiled
  ``(member x tile)`` prediction fan-out (:func:`predict_map`) that serves
  million-cell risk maps memory-bounded and multi-core; parallel results
  are bit-identical to serial ones in both directions.
* :mod:`repro.runtime.persistence` — ``save()``/``load()`` for every
  classifier, :class:`~repro.core.ensemble.IWareEnsemble`, and
  :class:`~repro.core.predictor.PawsPredictor` as an npz + json-manifest
  directory, so fitted models serve risk maps without refitting.
* :mod:`repro.runtime.service` — :class:`RiskMapService`, the cached
  fit-once / predict-many facade the CLI and examples build on.
* :mod:`repro.runtime.concurrency` — the ``@thread_shared`` registry:
  classes declared safe for cross-thread sharing, whose lock discipline
  is machine-checked by ``repro lint`` rule RP004.
* :mod:`repro.runtime.resilience` — the supervised fan-out engine under
  ``parallel_map``: per-task futures, crash recovery with a
  process→thread→serial degradation ladder, deadlines
  (:class:`~repro.runtime.resilience.Deadline`), and per-call
  :class:`~repro.runtime.resilience.ResilienceStats`.
* :mod:`repro.runtime.faults` — the deterministic fault-injection harness
  the chaos suite replays against real fits, serves, and saves.
* :mod:`repro.runtime.admission`, :mod:`repro.runtime.breaker`,
  :mod:`repro.runtime.registry`, :mod:`repro.runtime.daemon` — the
  park-service daemon: bounded admission with load shedding, circuit
  breakers over loads and dispatch, a hot-swappable multi-park model
  registry, and the HTTP skin + graceful drain tying them together
  (``repro serve``).

``repro.ml`` modules import this package for ``parallel_map`` and the
persistence codec, so this ``__init__`` must not import ``repro.core`` at
module scope; :class:`RiskMapService` is exposed lazily instead.
"""

from repro.runtime.admission import AdmissionGate
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.concurrency import thread_shared, thread_shared_classes
from repro.runtime.parallel import (
    parallel_map,
    predict_map,
    resolve_n_jobs,
    tile_slices,
)
from repro.runtime.persistence import load_model, save_model
from repro.runtime.resilience import (
    Deadline,
    ResilienceStats,
    RetryPolicy,
    collect_stats,
    deadline_scope,
    supervised_map,
)

__all__ = [
    "parallel_map",
    "predict_map",
    "tile_slices",
    "resolve_n_jobs",
    "save_model",
    "load_model",
    "thread_shared",
    "thread_shared_classes",
    "supervised_map",
    "Deadline",
    "deadline_scope",
    "collect_stats",
    "ResilienceStats",
    "RetryPolicy",
    "AdmissionGate",
    "CircuitBreaker",
    "RiskMapService",
    "ModelRegistry",
    "ParkServiceDaemon",
]


def __getattr__(name: str):
    # Lazy: these pull in repro.core, which imports this package.
    if name == "RiskMapService":
        from repro.runtime.service import RiskMapService

        return RiskMapService
    if name == "ModelRegistry":
        from repro.runtime.registry import ModelRegistry

        return ModelRegistry
    if name == "ParkServiceDaemon":
        from repro.runtime.daemon import ParkServiceDaemon

        return ParkServiceDaemon
    raise AttributeError(f"module 'repro.runtime' has no attribute '{name}'")
