"""Command-line interface.

Exposes the main workflows without writing any Python::

    python -m repro stats --park MFNP
    python -m repro maps --park SWS
    python -m repro evaluate --park QENP --model gpb --test-year 5
    python -m repro fieldtest --park "SWS dry" --blocks 5
    python -m repro plan --park MFNP --beta 0.8 --n-jobs 4
    python -m repro plan --park MFNP --beta 0.8 --post 0
    python -m repro predict --park MFNP --save-model models/mfnp
    python -m repro predict --park MFNP --load-model models/mfnp --effort 2.5
    python -m repro predict --park MFNP --load-model models/mfnp \
        --tile-size 4096 --n-jobs 4
    python -m repro lint src/repro
    python -m repro lint --select RP006 benchmarks examples

All commands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core import PawsPredictor
from repro.data import generate_dataset, get_profile, list_profiles
from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.data.generator import dataset_statistics
from repro.evaluation import ascii_heatmap, format_table
from repro.fieldtest import chi_squared_test, design_field_test, field_test_table, run_field_trial
from repro.planning import BNB_STRATEGIES, SOLVER_MODES
from repro.planning.service import PlanService
from repro.runtime.service import RiskMapService


def _positive_seconds(text: str) -> float:
    """argparse type for strictly positive second counts (deadlines).

    Raising :class:`argparse.ArgumentTypeError` makes argparse exit 2 with
    a usage error naming the offending flag — instead of starting work with
    an impossible budget or surfacing a stack trace mid-run.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got '{text}'"
        ) from None
    if value <= 0.0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds, got {text}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PAWS reproduction: poaching prediction and patrol "
        "planning under uncertainty (ICDE 2020).",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_park(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--park", default="MFNP",
            help=f"park profile; one of {list_profiles()}",
        )
        p.add_argument(
            "--scale", type=float, default=1.0,
            help="lattice scale factor (e.g. 0.5 for a quick run)",
        )

    stats = sub.add_parser("stats", help="Table I-style dataset statistics")
    add_park(stats)

    maps = sub.add_parser("maps", help="historical effort / activity maps")
    add_park(maps)

    evaluate = sub.add_parser("evaluate", help="fit a model and report AUC")
    add_park(evaluate)
    evaluate.add_argument("--model", default="gpb", choices=("svb", "dtb", "gpb"))
    evaluate.add_argument("--no-iware", action="store_true",
                          help="fit the flat baseline instead of iWare-E")
    evaluate.add_argument("--balanced", action="store_true",
                          help="balanced (undersampling) bagging")
    evaluate.add_argument("--test-year", type=int, default=None)
    evaluate.add_argument("--n-classifiers", type=int, default=8)

    fieldtest = sub.add_parser("fieldtest", help="simulate a field test")
    add_park(fieldtest)
    fieldtest.add_argument("--model", default="gpb", choices=("svb", "dtb", "gpb"))
    fieldtest.add_argument("--blocks", type=int, default=5,
                           help="blocks per risk group")
    fieldtest.add_argument("--periods", type=int, default=2,
                           help="trial length in time periods")

    plan = sub.add_parser(
        "plan",
        help="compute robust patrol plans (all posts, or one with --post)",
        description="Fit the predictor once and plan every patrol post "
        "through one PlanService: shared effort-response surfaces, cached "
        "MILP structure, LP fast path on concave utilities, and a "
        "thread-parallel per-post fan-out.",
    )
    add_park(plan)
    plan.add_argument("--post", type=int, default=None,
                      help="plan a single post (index into the park's "
                      "patrol posts); default plans every post")
    plan.add_argument("--beta", type=float, default=0.8)
    plan.add_argument("--horizon", type=int, default=10)
    plan.add_argument("--patrols", type=int, default=2)
    plan.add_argument("--segments", type=int, default=8)
    plan.add_argument("--solver", choices=SOLVER_MODES, default="auto",
                      help="'auto' takes the LP fast path when every "
                      "utility is concave; 'milp' always keeps the SOS2 "
                      "binaries; 'lp' forces the fast path; 'bnb' uses the "
                      "from-scratch certified branch and bound")
    plan.add_argument("--bnb-strategy", choices=BNB_STRATEGIES,
                      default="best_bound",
                      help="node/variable selection of the 'bnb' solver")
    plan.add_argument("--n-jobs", type=int, default=1,
                      help="planning threads (plans identical to serial)")
    plan.add_argument("--deadline", type=_positive_seconds, default=None,
                      metavar="SECONDS",
                      help="abort the whole planning request (prediction + "
                      "every solve, one shared budget) after this many "
                      "seconds; exit code 1 on overrun")

    predict = sub.add_parser(
        "predict",
        help="serve a risk map from a fitted (or saved) model",
        description="Fit the predictor once — or load one saved earlier — "
        "and serve a per-cell risk map without refitting. Serving streams "
        "cells through fixed-size tiles (--tile-size bounds transient "
        "memory) and fans (member x tile) tasks over --n-jobs workers; "
        "the map is bit-identical at every setting.",
    )
    add_park(predict)
    predict.add_argument("--model", default="gpb", choices=("svb", "dtb", "gpb"))
    predict.add_argument("--no-iware", action="store_true",
                         help="fit the flat baseline instead of iWare-E")
    predict.add_argument("--n-classifiers", type=int, default=6)
    predict.add_argument("--n-jobs", type=int, default=1,
                         help="workers for fitting AND serving "
                         "(results identical to serial)")
    predict.add_argument("--tile-size", type=int, default=None,
                         help="cells per serving tile; bounds the predict "
                         "path's transient memory at O(n_train x tile) "
                         "(default: one untiled pass)")
    predict.add_argument("--backend", default="auto",
                         choices=("auto", "thread", "process"),
                         help="fitting/serving pool: auto routes GIL-bound "
                         "weak learners (dtb/svb) to processes, BLAS-heavy "
                         "gpb to threads")
    predict.add_argument("--effort", type=float, default=None,
                         help="hypothetical patrol effort in km "
                         "(default: the park's median recorded effort)")
    predict.add_argument("--save-model", metavar="DIR", default=None,
                         help="persist the fitted model to DIR "
                         "(npz + json manifest)")
    predict.add_argument("--load-model", metavar="DIR", default=None,
                         help="serve from a model saved with --save-model "
                         "instead of fitting")
    predict.add_argument("--no-verify", action="store_true",
                         help="skip sha256 checksum verification when "
                         "loading with --load-model (trusted storage only)")
    predict.add_argument("--deadline", type=_positive_seconds, default=None,
                         metavar="SECONDS",
                         help="abort the serve after this many seconds; "
                         "exit code 1 on overrun")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived multi-park HTTP serving daemon",
        description="Serve risk maps and patrol plans for every saved model "
        "under --models-dir over HTTP (GET /riskmap, /plan, /health, "
        "/ready, /stats; POST /models/<park>/reload hot-swaps a re-saved "
        "model). Admission control sheds overload with 503, every admitted "
        "request runs under a deadline (504 on overrun), and SIGTERM "
        "drains gracefully.",
    )
    serve.add_argument("--models-dir", required=True, metavar="DIR",
                       help="directory of saved models, one "
                       "save_model directory per park (the directory name "
                       "must match a park profile)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port; 0 picks an ephemeral port "
                       "(printed on startup)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent admitted requests; the rest queue "
                       "briefly, then shed with 503")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="requests allowed to wait for an admission slot")
    serve.add_argument("--default-deadline", type=_positive_seconds,
                       default=30.0, metavar="SECONDS",
                       help="per-request budget when the client sends no "
                       "?deadline= (504 on overrun)")
    serve.add_argument("--no-default-deadline", action="store_true",
                       help="disable the server-side default deadline "
                       "(client-supplied deadlines still apply)")
    serve.add_argument("--max-parks", type=int, default=8,
                       help="models kept hot before LRU eviction")
    serve.add_argument("--tile-size", type=int, default=None,
                       help="cells per serving tile (bounds transient "
                       "memory; see 'predict')")
    serve.add_argument("--n-jobs", type=int, default=1,
                       help="prediction workers per request")
    serve.add_argument("--backend", default="auto",
                       choices=("auto", "thread", "process"),
                       help="prediction pool flavour")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request to stderr")

    from repro.analysis.cli import DESCRIPTION as lint_description
    from repro.analysis.cli import add_arguments as add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant analyzer (rules RP001-RP006)",
        description=lint_description,
    )
    add_lint_arguments(lint)
    return parser


def _load(args) -> tuple:
    profile = get_profile(args.park)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    data = generate_dataset(profile, seed=args.seed)
    return profile, data


def _use_balanced_bagging(profile) -> bool:
    """The paper's rule of thumb: undersample below ~3% positives (SWS)."""
    return (
        profile.target_positive_rate is not None
        and profile.target_positive_rate < 0.03
    )


def _cmd_stats(args, out) -> int:
    profile, data = _load(args)
    stats = dataset_statistics(data)
    rows = [[key, float(value)] for key, value in stats.items()]
    out.write(f"{profile.name} dataset statistics (seed {args.seed})\n")
    out.write(format_table(["statistic", "value"], rows, "{:.3f}") + "\n")
    return 0


def _cmd_maps(args, out) -> int:
    __, data = _load(args)
    effort = data.recorded_effort.sum(axis=0)
    activity = data.detections.sum(axis=0).astype(float)
    out.write(ascii_heatmap(data.park.grid, effort,
                            title="historical patrol effort:") + "\n\n")
    out.write(ascii_heatmap(data.park.grid, activity,
                            title="historical detected activity:") + "\n")
    return 0


def _cmd_evaluate(args, out) -> int:
    profile, data = _load(args)
    test_year = args.test_year if args.test_year is not None else profile.years - 1
    split = data.dataset.split_by_test_year(test_year)
    if split.test.labels.sum() in (0, split.test.n_points):
        out.write(
            f"test year {test_year} has a single class; AUC undefined. "
            "Try another --test-year or --seed.\n"
        )
        return 1
    predictor = PawsPredictor(
        model=args.model,
        iware=not args.no_iware,
        n_classifiers=args.n_classifiers,
        balanced=args.balanced,
        seed=args.seed + 1,
    ).fit(split.train)
    auc = predictor.evaluate_auc(split.test)
    out.write(
        f"{predictor.name} on {profile.name}, test year {test_year}: "
        f"AUC = {auc:.3f}\n"
        f"(train: {split.train.n_points} points / "
        f"{int(split.train.labels.sum())} positives; "
        f"test: {split.test.n_points} / {int(split.test.labels.sum())})\n"
    )
    return 0


def _cmd_fieldtest(args, out) -> int:
    profile, data = _load(args)
    split = data.dataset.split_by_test_year(profile.years - 1)
    predictor = PawsPredictor(
        model=args.model, iware=True, n_classifiers=6,
        balanced=_use_balanced_bagging(profile),
        seed=args.seed + 1,
    ).fit(split.train)
    features = predictor.cell_feature_matrix(data.park, data.recorded_effort[-1])
    nominal = float(np.median(data.dataset.current_effort))
    risk = predictor.predict_proba(features, effort=nominal)
    rng = np.random.default_rng(args.seed + 2)
    block_radius = 1 if data.park.n_cells >= 9 * 3 * args.blocks * 2 else 0
    design = design_field_test(
        data.park.grid, risk, data.recorded_effort.sum(axis=0),
        blocks_per_group=args.blocks, block_radius=block_radius, rng=rng,
    )
    trial = run_field_trial(
        design, data.poachers, rng, n_periods=args.periods,
        start_period=profile.n_periods,
    )
    out.write(field_test_table({f"{profile.name} simulated trial": trial}) + "\n")
    __, p = chi_squared_test(trial)
    verdict = "significant" if p < 0.05 else "not significant"
    out.write(f"chi-squared p = {p:.4f} ({verdict} at 0.05)\n")
    return 0


def _cmd_plan(args, out) -> int:
    profile, data = _load(args)
    if args.post is not None and not 0 <= args.post < data.park.patrol_posts.size:
        out.write(
            f"--post must index one of {data.park.patrol_posts.size} posts\n"
        )
        return 1
    split = data.dataset.split_by_test_year(profile.years - 1)
    predictor = PawsPredictor(
        model="gpb", iware=True, n_classifiers=6, seed=args.seed + 1
    ).fit(split.train)
    features = predictor.cell_feature_matrix(data.park, data.recorded_effort[-1])
    service = PlanService(
        RiskMapService(predictor),
        data.park.grid,
        data.park.patrol_posts,
        horizon=args.horizon,
        n_patrols=args.patrols,
        n_segments=args.segments,
        solver_mode=args.solver,
        bnb_strategy=args.bnb_strategy,
        n_jobs=args.n_jobs,
    )

    try:
        if args.post is not None:
            post = int(data.park.patrol_posts[args.post])
            plan = service.plan_post(
                post, features, beta=args.beta, deadline=args.deadline
            )
            out.write(
                f"robust plan (beta={args.beta}) for post {post} on "
                f"{profile.name}: utility {plan.objective_value:.3f} "
                f"(solved as {plan.solution.method.upper()})\n"
            )
            out.write(ascii_heatmap(data.park.grid, plan.coverage,
                                    title="prescribed coverage:") + "\n")
            out.write("mixed-strategy routes (weight: cells):\n")
            for route in plan.routes[:5]:
                out.write(f"  {route.weight:.3f}: {route.cells}\n")
            return 0

        plans, elapsed = service.timed_plan_all(
            features, beta=args.beta, deadline=args.deadline
        )
    except DeadlineExceededError as exc:
        out.write(f"planning aborted: {exc}\n")
        return 1
    rows = [
        [str(post), plan.objective_value, plan.solution.method,
         len(plan.routes)]
        for post, plan in plans.items()
    ]
    out.write(
        f"robust plans (beta={args.beta}) for {len(plans)} posts on "
        f"{profile.name}: {elapsed:.2f}s "
        f"({len(plans) / elapsed:.1f} posts/s, n_jobs={args.n_jobs})\n"
    )
    out.write(format_table(["post", "utility", "solver", "routes"], rows,
                           "{:.3f}") + "\n")
    combined = np.zeros(data.park.n_cells)
    for plan in plans.values():
        combined += plan.coverage
    out.write(ascii_heatmap(data.park.grid, combined,
                            title="combined prescribed coverage:") + "\n")
    return 0


def _cmd_predict(args, out) -> int:
    profile, data = _load(args)
    if args.load_model:
        start = time.perf_counter()
        predictor = PawsPredictor.load(
            args.load_model, verify=not args.no_verify
        )
        setup = time.perf_counter() - start
        source = f"loaded from {args.load_model}"
        out.write(
            "serving from a saved model; fitting flags (--model, --no-iware, "
            "--n-classifiers) are ignored\n"
        )
    else:
        split = data.dataset.split_by_test_year(profile.years - 1)
        start = time.perf_counter()
        predictor = PawsPredictor(
            model=args.model,
            iware=not args.no_iware,
            n_classifiers=args.n_classifiers,
            balanced=_use_balanced_bagging(profile),
            seed=args.seed + 1,
            n_jobs=args.n_jobs,
            backend=args.backend,
        ).fit(split.train)
        setup = time.perf_counter() - start
        source = f"fitted on {split.train.n_points} points"

    service = RiskMapService(
        predictor,
        tile_size=args.tile_size,
        n_jobs=args.n_jobs,
        backend=args.backend,
    )
    features = predictor.cell_feature_matrix(data.park, data.recorded_effort[-1])
    # Register the park's features so repeated queries key the cache by
    # token instead of re-hashing the full matrix.
    park_token = service.register_features(profile.name, features)
    effort = (
        args.effort
        if args.effort is not None
        else float(np.median(data.dataset.current_effort))
    )
    start = time.perf_counter()
    try:
        risk = service.risk_map(park_token, effort=effort, deadline=args.deadline)
    except DeadlineExceededError as exc:
        out.write(f"prediction aborted: {exc}\n")
        return 1
    serve = time.perf_counter() - start
    out.write(
        f"{predictor.name} risk map for {profile.name} at effort "
        f"{effort:.2f} km ({source}; setup {setup:.2f}s, serve {serve:.3f}s)\n"
    )
    out.write(
        ascii_heatmap(data.park.grid, risk, title="predicted attack risk:") + "\n"
    )
    if args.save_model:
        predictor.save(args.save_model)
        out.write(f"model saved to {args.save_model}\n")
    return 0


def _cmd_serve(args, out) -> int:
    from repro.runtime.daemon import ParkServiceDaemon

    try:
        daemon = ParkServiceDaemon(
            args.models_dir,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            default_deadline=(
                None if args.no_default_deadline else args.default_deadline
            ),
            registry_options={
                "max_parks": args.max_parks,
                "tile_size": args.tile_size,
                "n_jobs": args.n_jobs,
                "backend": args.backend,
            },
            verbose=args.verbose,
        )
        daemon.start()
    except ConfigurationError as exc:
        out.write(f"serve: {exc}\n")
        return 2
    out.write(
        f"park-service listening on http://{daemon.host}:{daemon.port} "
        f"(parks: {', '.join(daemon.registry.available()) or 'none'})\n"
    )
    out.flush()
    return daemon.run_forever()


def _cmd_lint(args, out) -> int:
    from repro.analysis.cli import run_from_args

    return run_from_args(args, out)


_COMMANDS = {
    "stats": _cmd_stats,
    "maps": _cmd_maps,
    "evaluate": _cmd_evaluate,
    "fieldtest": _cmd_fieldtest,
    "plan": _cmd_plan,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
