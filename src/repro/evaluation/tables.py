"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def format_table(
    headers: list[str],
    rows: list[list[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Align a list-of-rows into a monospaced table.

    Floats are rendered with ``float_format``; everything else with
    ``str``. Column widths adapt to the longest entry.
    """
    if not headers:
        raise ConfigurationError("headers must not be empty")
    rendered: list[list[str]] = [list(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} entries, expected {len(headers)}"
            )
        rendered.append(
            [
                float_format.format(item) if isinstance(item, float) else str(item)
                for item in row
            ]
        )
    widths = [
        max(len(rendered[r][c]) for r in range(len(rendered)))
        for c in range(len(headers))
    ]
    lines = []
    for r, row_items in enumerate(rendered):
        lines.append(
            "  ".join(item.rjust(widths[c]) for c, item in enumerate(row_items))
        )
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    return "\n".join(lines)
