"""Experiment runners and reporting shared by the benchmark suite."""

from repro.evaluation.experiments import (
    ModelSpec,
    TABLE2_MODELS,
    evaluate_model_on_split,
    run_model_zoo,
)
from repro.evaluation.tables import format_table
from repro.evaluation.maps import ascii_heatmap

__all__ = [
    "ModelSpec",
    "TABLE2_MODELS",
    "evaluate_model_on_split",
    "run_model_zoo",
    "format_table",
    "ascii_heatmap",
]
