"""ASCII heatmap rendering of park rasters (Figs. 3 and 6).

The paper presents risk maps, uncertainty maps, and historical-effort maps
as colour rasters; the closest offline equivalent is a density-ramp ASCII
rendering, which the benchmarks print so the spatial structure is visible
in plain terminal output.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.geo.grid import Grid

#: Density ramp from empty to full.
DEFAULT_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    grid: Grid,
    values: np.ndarray,
    ramp: str = DEFAULT_RAMP,
    title: str | None = None,
) -> str:
    """Render per-cell values as an ASCII raster.

    Off-park cells render as spaces; in-park values are min-max scaled onto
    the character ramp.

    Parameters
    ----------
    grid:
        Park lattice.
    values:
        ``(n_cells,)`` values to visualise.
    ramp:
        Characters from lowest to highest density (>= 2 characters).
    title:
        Optional caption prepended to the map.
    """
    if len(ramp) < 2:
        raise ConfigurationError("ramp needs at least 2 characters")
    values = np.asarray(values, dtype=float)
    if values.shape != (grid.n_cells,):
        raise DataError(
            f"values must have shape ({grid.n_cells},), got {values.shape}"
        )
    if not np.isfinite(values).all():
        raise DataError("values contain non-finite entries")
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-15:
        scaled = np.zeros_like(values)
    else:
        scaled = (values - lo) / (hi - lo)
    indices = np.minimum((scaled * len(ramp)).astype(int), len(ramp) - 1)

    raster = np.full(grid.shape, " ", dtype="<U1")
    for cid in range(grid.n_cells):
        row, col = grid.cell_rc(cid)
        raster[row, col] = ramp[indices[cid]]
    lines = ["".join(row) for row in raster]
    if title is not None:
        lines.insert(0, title)
    return "\n".join(lines)
