"""Model-zoo experiment runners (Table II).

Table II evaluates six models (SVB, DTB, GPB, each with and without
iWare-E) on four dataset variants across three test years. These helpers
run any slice of that grid with consistent seeding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predictor import PawsPredictor
from repro.data.dataset import PoachingDataset, YearSplit


@dataclass(frozen=True)
class ModelSpec:
    """One column of Table II."""

    model: str
    iware: bool

    @property
    def name(self) -> str:
        return f"{self.model.upper()}-iW" if self.iware else self.model.upper()


#: The six Table II columns, in the paper's order (without, then with iWare-E).
TABLE2_MODELS: tuple[ModelSpec, ...] = (
    ModelSpec("svb", False),
    ModelSpec("dtb", False),
    ModelSpec("gpb", False),
    ModelSpec("svb", True),
    ModelSpec("dtb", True),
    ModelSpec("gpb", True),
)


def evaluate_model_on_split(
    spec: ModelSpec,
    split: YearSplit,
    balanced: bool = False,
    n_classifiers: int = 10,
    n_estimators: int = 4,
    seed: int = 0,
    n_jobs: int = 1,
) -> float:
    """AUC of one model on one train/test split.

    ``n_jobs`` fans the model's internal fitting out to threads; results
    are bit-identical to serial, so sweeps can use it freely.
    """
    predictor = PawsPredictor(
        model=spec.model,
        iware=spec.iware,
        n_classifiers=n_classifiers,
        balanced=balanced,
        n_estimators=n_estimators,
        seed=seed,
        n_jobs=n_jobs,
    )
    predictor.fit(split.train)
    return predictor.evaluate_auc(split.test)


def run_model_zoo(
    dataset: PoachingDataset,
    test_years: list[int],
    balanced: bool = False,
    n_classifiers: int = 10,
    n_estimators: int = 4,
    seed: int = 0,
    models: tuple[ModelSpec, ...] = TABLE2_MODELS,
    n_jobs: int = 1,
) -> dict[int, dict[str, float]]:
    """Table II block for one dataset: {test_year: {model_name: AUC}}.

    Parameters
    ----------
    dataset:
        Full multi-year dataset for one park.
    test_years:
        Year indices to evaluate (each trains on the three prior years).
    balanced:
        Use balanced bagging (the paper's choice for SWS).
    n_classifiers:
        iWare-E ensemble size (20 for MFNP/QENP, 10 for SWS in the paper).
    n_jobs:
        Fitting threads per model (bit-identical to serial).
    """
    results: dict[int, dict[str, float]] = {}
    for year in test_years:
        split = dataset.split_by_test_year(year)
        row: dict[str, float] = {}
        for spec in models:
            row[spec.name] = evaluate_model_on_split(
                spec,
                split,
                balanced=balanced,
                n_classifiers=n_classifiers,
                n_estimators=n_estimators,
                seed=seed,
                n_jobs=n_jobs,
            )
        results[year] = row
    return results


def average_by_model(results: dict[int, dict[str, float]]) -> dict[str, float]:
    """Per-model mean AUC across test years (Table II's "Avg" rows)."""
    if not results:
        return {}
    model_names = next(iter(results.values())).keys()
    return {
        name: sum(row[name] for row in results.values()) / len(results)
        for name in model_names
    }
