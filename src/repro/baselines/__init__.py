"""Predecessor models from the PAWS lineage (Section II).

The paper builds on a decade of anti-poaching models; reimplementing the
two landmark predecessors lets the benchmarks place the enhanced iWare-E in
its historical context:

* :mod:`repro.baselines.capture` — CAPTURE (Nguyen et al., AAMAS 2016): a
  two-layer Bayesian network with a *latent attack* variable and an
  explicit imperfect-detection layer, fit by EM.
* :mod:`repro.baselines.intercept` — INTERCEPT (Kar et al., AAMAS 2017): an
  ensemble of decision trees with boosting-style reinforcement of
  hard positives, which "did not assume imperfect detection ... but
  achieved better runtime and performance than CAPTURE".
"""

from repro.baselines.capture import CaptureModel
from repro.baselines.intercept import InterceptModel

__all__ = ["CaptureModel", "InterceptModel"]
