"""CAPTURE: a latent-attack Bayesian network fit by EM.

CAPTURE (Nguyen et al. 2016) models poaching with two coupled layers::

    attack:     a ~ Bernoulli( sigmoid(w . x) )
    detection:  o | a=1 ~ Bernoulli( sigmoid(v . [x, effort]) )
    (o = 0 whenever a = 0)

Only ``o`` is observed, so negatives are ambiguous: either no attack, or an
attack that rangers missed. The model is fit with expectation-maximisation:

* E-step — posterior attack responsibility for every ``o = 0`` sample,
  ``q = p_a (1 - p_d) / (p_a (1 - p_d) + (1 - p_a))``;
* M-step — two weighted logistic regressions: the attack layer on soft
  labels ``q`` and the detection layer on attack-weighted samples.

This is the faithful structural core of CAPTURE; the original also carried
temporal dependence between seasons, which our datasets encode through the
previous-effort covariate already present in ``x``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml.calibration import _stable_sigmoid
from repro.ml.linear import LogisticRegression


class CaptureModel:
    """Two-layer imperfect-detection model, the 2016 PAWS predecessor.

    Parameters
    ----------
    n_em_iter:
        EM iterations (each runs two Newton logistic fits).
    l2:
        Ridge penalty of both logistic layers.
    tol:
        Stop EM when the mean absolute change in responsibilities drops
        below this.
    """

    def __init__(self, n_em_iter: int = 15, l2: float = 1.0, tol: float = 1e-4):
        if n_em_iter < 1:
            raise ConfigurationError(f"n_em_iter must be >= 1, got {n_em_iter}")
        self.n_em_iter = n_em_iter
        self.l2 = l2
        self.tol = tol
        self.attack_model_: LogisticRegression | None = None
        self.detect_model_: LogisticRegression | None = None
        self.n_em_used_: int = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _augment(X: np.ndarray, effort: np.ndarray) -> np.ndarray:
        return np.hstack([X, effort[:, None]])

    def fit(self, X: np.ndarray, y: np.ndarray, effort: np.ndarray) -> "CaptureModel":
        """Fit by EM on observations ``y`` and per-sample patrol effort."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=np.int64)
        effort = np.asarray(effort, dtype=float)
        if X.ndim != 2:
            raise DataError("X must be 2-D")
        n = X.shape[0]
        if y.shape != (n,) or effort.shape != (n,):
            raise DataError("X, y, and effort lengths must agree")
        if (effort < 0).any():
            raise DataError("patrol effort cannot be negative")
        if y.sum() == 0 or y.sum() == n:
            raise DataError("CAPTURE needs both observed and unobserved samples")

        X_detect = self._augment(X, effort)
        # Initialise responsibilities: observed attacks are certain; for
        # o=0 start from the base rate.
        q = np.where(y == 1, 1.0, float(y.mean()))
        attack = LogisticRegression(l2=self.l2)
        detect = LogisticRegression(l2=self.l2)
        for iteration in range(self.n_em_iter):
            # M-step: attack layer on soft labels via the two-row trick —
            # each sample contributes a positive row with weight q and a
            # negative row with weight 1-q.
            attack_X = np.vstack([X, X])
            attack_y = np.r_[np.ones(n, dtype=int), np.zeros(n, dtype=int)]
            attack_w = np.r_[q, 1.0 - q]
            attack.fit(attack_X, attack_y, sample_weight=attack_w)
            # Detection layer: among attacked samples (weight q), was the
            # attack observed?
            detect.fit(X_detect, y, sample_weight=np.maximum(q, 1e-6))

            # E-step.
            p_attack = attack.predict_proba(X)
            p_detect = detect.predict_proba(X_detect)
            numer = p_attack * (1.0 - p_detect)
            q_new = np.where(
                y == 1, 1.0, numer / np.maximum(numer + (1.0 - p_attack), 1e-12)
            )
            delta = float(np.abs(q_new - q).mean())
            q = q_new
            self.n_em_used_ = iteration + 1
            if delta < self.tol:
                break
        self.attack_model_ = attack
        self.detect_model_ = detect
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.attack_model_ is None or self.detect_model_ is None:
            raise NotFittedError("CaptureModel is not fitted")

    def predict_attack_proba(self, X: np.ndarray) -> np.ndarray:
        """P(a = 1): latent attack probability, the conservation signal."""
        self._check_fitted()
        assert self.attack_model_ is not None
        return self.attack_model_.predict_proba(np.asarray(X, dtype=float))

    def predict_detection_proba(
        self, X: np.ndarray, effort: np.ndarray
    ) -> np.ndarray:
        """P(o = 1 | a = 1): detection probability at the given effort."""
        self._check_fitted()
        assert self.detect_model_ is not None
        X = np.asarray(X, dtype=float)
        effort = np.asarray(effort, dtype=float)
        return self.detect_model_.predict_proba(self._augment(X, effort))

    def predict_proba(
        self, X: np.ndarray, effort: np.ndarray | float = 1.0
    ) -> np.ndarray:
        """P(o = 1) = P(a = 1) * P(o = 1 | a = 1) — the observable risk."""
        X = np.asarray(X, dtype=float)
        effort_arr = np.broadcast_to(
            np.asarray(effort, dtype=float), (X.shape[0],)
        ).copy()
        return self.predict_attack_proba(X) * self.predict_detection_proba(
            X, effort_arr
        )
