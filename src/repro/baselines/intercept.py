"""INTERCEPT: a boosted ensemble of decision trees.

INTERCEPT (Kar et al. 2017) replaced CAPTURE's Bayesian network with "an
ensemble of decision trees that did not assume imperfect detection of
poaching activities but achieved better runtime and performance". Its
BoostIT iterations reinforce regions the ensemble finds hard: positive
samples the current ensemble under-scores get duplicated before the next
round, sharpening recall on rare attacks.

This reimplementation keeps the published structure — balanced tree
ensemble + iterative hard-positive boosting — in feature space (the
original boosted by spatial adjacency; on our synthetic parks geography is
already encoded in the feature vector).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.bagging import BalancedBaggingClassifier
from repro.ml.base import Classifier
from repro.ml.tree import DecisionTreeClassifier


class InterceptModel(Classifier):
    """Balanced decision-tree ensemble with BoostIT-style iterations.

    Parameters
    ----------
    n_trees:
        Trees per ensemble round.
    n_boost_iter:
        BoostIT rounds; 0 disables boosting (plain balanced ensemble).
    boost_quantile:
        Positives scored below this quantile of the positive-score
        distribution are considered "hard" and duplicated.
    max_depth:
        Depth limit of the member trees.
    rng:
        Randomness for subsampling and tree construction.
    """

    def __init__(
        self,
        n_trees: int = 10,
        n_boost_iter: int = 2,
        boost_quantile: float = 0.5,
        max_depth: int = 8,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if n_trees < 1:
            raise ConfigurationError(f"n_trees must be >= 1, got {n_trees}")
        if n_boost_iter < 0:
            raise ConfigurationError(f"n_boost_iter must be >= 0, got {n_boost_iter}")
        if not 0.0 < boost_quantile < 1.0:
            raise ConfigurationError(
                f"boost_quantile must be in (0, 1), got {boost_quantile}"
            )
        self.n_trees = n_trees
        self.n_boost_iter = n_boost_iter
        self.boost_quantile = boost_quantile
        self.max_depth = max_depth
        self.rng = rng or np.random.default_rng()
        self._ensemble: BalancedBaggingClassifier | None = None

    def _make_ensemble(self) -> BalancedBaggingClassifier:
        def tree_factory() -> DecisionTreeClassifier:
            seed = int(self.rng.integers(2**31 - 1))
            return DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features="sqrt",
                rng=np.random.default_rng(seed),
            )

        seed = int(self.rng.integers(2**31 - 1))
        return BalancedBaggingClassifier(
            tree_factory,
            n_estimators=self.n_trees,
            rng=np.random.default_rng(seed),
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "InterceptModel":
        X, y = self._check_fit_input(X, y)
        X_cur, y_cur = X, y
        ensemble = self._make_ensemble().fit(X_cur, y_cur)
        for __ in range(self.n_boost_iter):
            scores = ensemble.predict_proba(X)
            pos_scores = scores[y == 1]
            if pos_scores.size == 0:
                break
            threshold = np.quantile(pos_scores, self.boost_quantile)
            hard = (y == 1) & (scores <= threshold)
            if not hard.any():
                break
            X_cur = np.vstack([X_cur, X[hard]])
            y_cur = np.r_[y_cur, y[hard]]
            ensemble = self._make_ensemble().fit(X_cur, y_cur)
        self._ensemble = ensemble
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._check_predict_input(X)
        assert self._ensemble is not None
        return self._ensemble.predict_proba(X)
