"""Probability calibration.

:class:`PlattScaler` fits a sigmoid ``P(y=1|s) = 1 / (1 + exp(A*s + B))`` to
decision scores (Platt 1999), used to turn SVM margins into probabilities.
The fit follows Lin, Lin & Weng (2007): Newton's method with backtracking on
the regularised target probabilities, which is numerically stable even with
very few positives.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, NotFittedError


class PlattScaler:
    """Sigmoid calibration of real-valued decision scores."""

    def __init__(self, max_iter: int = 100, tol: float = 1e-10):
        self.max_iter = max_iter
        self.tol = tol
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "PlattScaler":
        """Fit the sigmoid on scores and {0, 1} labels."""
        scores = np.asarray(scores, dtype=float).ravel()
        y = np.asarray(y).ravel()
        if scores.shape != y.shape:
            raise DataError("scores and labels must have the same length")
        if scores.size == 0:
            raise DataError("cannot calibrate on an empty set")
        n_pos = float(np.sum(y == 1))
        n_neg = float(np.sum(y == 0))
        # Regularised targets (avoid 0/1 so the log-likelihood stays finite).
        hi = (n_pos + 1.0) / (n_pos + 2.0)
        lo = 1.0 / (n_neg + 2.0)
        t = np.where(y == 1, hi, lo)

        a, b = 0.0, float(np.log((n_neg + 1.0) / (n_pos + 1.0)))
        fval = self._objective(scores, t, a, b)
        for _ in range(self.max_iter):
            fapb = a * scores + b
            p = _stable_sigmoid(-fapb)  # P(y=1) = sigma(-(a*s+b)) in Platt's sign convention
            # Gradient and Hessian of the negative log-likelihood.
            d1 = t - p
            d2 = p * (1 - p) + 1e-12
            g1 = float(np.sum(scores * d1))
            g0 = float(np.sum(d1))
            if abs(g1) < self.tol and abs(g0) < self.tol:
                break
            h11 = float(np.sum(scores * scores * d2)) + 1e-12
            h22 = float(np.sum(d2)) + 1e-12
            h21 = float(np.sum(scores * d2))
            det = h11 * h22 - h21 * h21
            if abs(det) < 1e-18:
                break
            da = -(h22 * g1 - h21 * g0) / det
            db = -(-h21 * g1 + h11 * g0) / det
            # Backtracking line search.
            step = 1.0
            improved = False
            for _ in range(20):
                na, nb = a + step * da, b + step * db
                nval = self._objective(scores, t, na, nb)
                if nval < fval + 1e-12:
                    a, b, fval = na, nb, nval
                    improved = True
                    break
                step /= 2.0
            if not improved:
                break
        # Like the reference implementation, accept the best iterate found if
        # the gradient tolerance was not reached within max_iter (common on
        # separable data, where A diverges while the fit keeps improving).
        self.a_, self.b_ = a, b
        return self

    @staticmethod
    def _objective(scores: np.ndarray, t: np.ndarray, a: float, b: float) -> float:
        fapb = a * scores + b
        p = np.clip(_stable_sigmoid(-fapb), 1e-15, 1 - 1e-15)
        return float(-np.sum(t * np.log(p) + (1 - t) * np.log(1 - p)))

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated P(y=1) for decision scores."""
        if self.a_ is None or self.b_ is None:
            raise NotFittedError("PlattScaler is not fitted")
        scores = np.asarray(scores, dtype=float)
        return _stable_sigmoid(-(self.a_ * scores + self.b_))


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out
