"""Infinitesimal-jackknife variance for bagged ensembles.

Section V-C of the paper computes random-forest confidence intervals "using
the infinite jackknife method proposed by [Wager, Hastie & Efron 2014]" and
compares them with GP variance (Fig. 7). The estimator is

``V_IJ = sum_i Cov_b[N_bi, t_b(x)]^2``

where ``N_bi`` is the number of times training point ``i`` appears in
bootstrap ``b`` and ``t_b(x)`` the b-th member's prediction at ``x``, with
the finite-B Monte-Carlo bias correction of Eq. (7) in that paper.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.ml.bagging import BaggingClassifier


def infinitesimal_jackknife_variance(
    inbag_counts: np.ndarray,
    member_predictions: np.ndarray,
    bias_correct: bool = True,
) -> np.ndarray:
    """IJ variance of a bagged prediction at each test point.

    Parameters
    ----------
    inbag_counts:
        ``(n_estimators, n_train)`` bootstrap multiplicity matrix.
    member_predictions:
        ``(n_estimators, n_test)`` per-member predictions.
    bias_correct:
        Apply the finite-B Monte-Carlo correction (recommended; the raw
        estimator is badly biased upward for small ensembles).

    Returns
    -------
    numpy.ndarray
        ``(n_test,)`` variance estimates (clipped at zero).
    """
    inbag = np.asarray(inbag_counts, dtype=float)
    preds = np.asarray(member_predictions, dtype=float)
    if inbag.ndim != 2 or preds.ndim != 2:
        raise DataError("inbag_counts and member_predictions must be 2-D")
    n_estimators = inbag.shape[0]
    if preds.shape[0] != n_estimators:
        raise DataError(
            f"estimator count mismatch: {inbag.shape[0]} vs {preds.shape[0]}"
        )
    if n_estimators < 2:
        raise DataError("IJ variance needs at least 2 estimators")

    centered_n = inbag - inbag.mean(axis=0, keepdims=True)  # (B, n_train)
    centered_t = preds - preds.mean(axis=0, keepdims=True)  # (B, n_test)
    # Cov_b[N_bi, t_b] for every (train point, test point) pair.
    cov = centered_n.T @ centered_t / n_estimators  # (n_train, n_test)
    raw = np.sum(cov**2, axis=0)  # (n_test,)
    if not bias_correct:
        return raw
    n_train = inbag.shape[1]
    member_var = preds.var(axis=0)  # (n_test,)
    correction = n_train * member_var / n_estimators
    return np.maximum(raw - correction, 0.0)


def bagging_ij_variance(
    model: BaggingClassifier, X: np.ndarray, bias_correct: bool = True
) -> np.ndarray:
    """IJ variance of a fitted :class:`BaggingClassifier` on test points."""
    if model.inbag_counts_ is None:
        raise DataError("model must be fitted before computing IJ variance")
    member_preds = model.member_probabilities(X)
    return infinitesimal_jackknife_variance(
        model.inbag_counts_, member_preds, bias_correct=bias_correct
    )
