"""Linear support-vector machine with probability calibration.

The SVB weak learner of the paper (bagging ensembles of SVMs). Training uses
dual coordinate descent for the L2-regularised L1-loss SVM (Hsieh et al.
2008), which converges quickly on the small bootstrap subsets produced by
bagging; probabilities come from Platt scaling fitted on the training scores.

The paper finds SVMs "suboptimal weak learners in this domain" (Table II
shows SVB near 0.5 AUC without iWare-E); this implementation reproduces the
model faithfully rather than trying to fix it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import Classifier
from repro.ml.calibration import PlattScaler
from repro.ml.scaling import StandardScaler


class LinearSVMClassifier(Classifier):
    """L2-regularised hinge-loss linear SVM with Platt-scaled probabilities.

    Parameters
    ----------
    c:
        Inverse regularisation strength (larger = less regularised).
    max_epochs:
        Maximum passes of dual coordinate descent over the training set.
    tol:
        Stop when the largest projected-gradient violation in an epoch falls
        below this value.
    class_weight_balanced:
        Scale each class's box constraint by the inverse class frequency,
        mitigating (but not solving) label imbalance.
    rng:
        Randomness for coordinate-order shuffling.
    """

    #: Dual coordinate descent is a Python-level loop, so fits of SVM
    #: ensembles profit from the process backend.
    fit_backend_hint = "process"

    def __init__(
        self,
        c: float = 1.0,
        max_epochs: int = 200,
        tol: float = 1e-4,
        class_weight_balanced: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if c <= 0:
            raise ConfigurationError(f"c must be positive, got {c}")
        if max_epochs < 1:
            raise ConfigurationError(f"max_epochs must be >= 1, got {max_epochs}")
        self.c = c
        self.max_epochs = max_epochs
        self.tol = tol
        self.class_weight_balanced = class_weight_balanced
        self.rng = rng or np.random.default_rng()
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._scaler = StandardScaler()
        self._platt = PlattScaler()

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVMClassifier":
        X, y = self._check_fit_input(X, y)
        Xs = self._scaler.fit_transform(X)
        # Augment with a constant column so the bias is regularised jointly —
        # standard practice for dual coordinate descent.
        Xa = np.hstack([Xs, np.ones((Xs.shape[0], 1))])
        signs = np.where(y == 1, 1.0, -1.0)

        n, d = Xa.shape
        upper = np.full(n, self.c)
        if self.class_weight_balanced:
            n_pos = max(1, int((signs > 0).sum()))
            n_neg = max(1, int((signs < 0).sum()))
            upper = np.where(signs > 0, self.c * n / (2.0 * n_pos),
                             self.c * n / (2.0 * n_neg))

        alpha = np.zeros(n)
        w = np.zeros(d)
        sq_norms = np.einsum("ij,ij->i", Xa, Xa)
        for _ in range(self.max_epochs):
            max_violation = 0.0
            for i in self.rng.permutation(n):
                if sq_norms[i] < 1e-12:
                    continue
                margin = signs[i] * float(Xa[i] @ w)
                grad = margin - 1.0
                # Projected gradient for the box constraint 0 <= alpha <= U.
                if alpha[i] <= 0:
                    pg = min(grad, 0.0)
                elif alpha[i] >= upper[i]:
                    pg = max(grad, 0.0)
                else:
                    pg = grad
                if abs(pg) > max_violation:
                    max_violation = abs(pg)
                if abs(pg) > 1e-12:
                    old = alpha[i]
                    alpha[i] = min(max(old - grad / sq_norms[i], 0.0), upper[i])
                    w += (alpha[i] - old) * signs[i] * Xa[i]
            if max_violation < self.tol:
                break

        self.weights_ = w[:-1]
        self.bias_ = float(w[-1])
        scores = Xs @ self.weights_ + self.bias_
        self._platt.fit(scores, y)
        self._mark_fitted()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin for each row (positive = positive class).

        The margin reduction runs through einsum, whose per-row accumulation
        order does not depend on the row count — so serving the rows in
        tiles (``repro.runtime.parallel.predict_map``) is bit-identical to
        serving them all at once. (Fit-time Platt scores keep the BLAS
        product above: they are computed once, on the whole training set.)
        """
        X = self._check_predict_input(X)
        assert self.weights_ is not None
        Xs = self._scaler.transform(X)
        return np.einsum("ij,j->i", Xs, self.weights_) + self.bias_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._platt.transform(self.decision_function(X))

    # ------------------------------------------------------------------
    def to_manifest(self, store, prefix: str) -> dict:
        from repro.exceptions import NotFittedError
        from repro.runtime.persistence import encode_standard_scaler

        if self.weights_ is None or self._platt.a_ is None:
            raise NotFittedError("cannot persist an unfitted LinearSVMClassifier")
        return {
            "type": "LinearSVMClassifier",
            "config": {
                "c": self.c,
                "max_epochs": self.max_epochs,
                "tol": self.tol,
                "class_weight_balanced": self.class_weight_balanced,
            },
            "n_features": self._n_features,
            "bias": self.bias_,
            "platt": {"a": self._platt.a_, "b": self._platt.b_},
            "scaler": encode_standard_scaler(self._scaler, store, prefix),
            "arrays": {"weights": store.put(f"{prefix}/weights", self.weights_)},
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "LinearSVMClassifier":
        from repro.runtime.persistence import decode_standard_scaler, get_array

        model = cls(**node["config"])
        model.weights_ = get_array(arrays, node["arrays"]["weights"]).astype(float)
        model.bias_ = float(node["bias"])
        model._scaler = decode_standard_scaler(node["scaler"], arrays)
        model._platt.a_ = float(node["platt"]["a"])
        model._platt.b_ = float(node["platt"]["b"])
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model
