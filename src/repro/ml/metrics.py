"""Binary-classification metrics.

The paper reports AUC (Table II) and selects iWare-E classifier weights by
minimising log-loss (Section IV). Implemented from scratch on numpy; AUC uses
the rank statistic (equivalent to the Mann-Whitney U), with tie handling via
midranks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

_EPS = 1e-15


def _check_pair(y_true: np.ndarray, y_score: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_score = np.asarray(y_score, dtype=float).ravel()
    if y_true.shape != y_score.shape:
        raise DataError(
            f"y_true and y_score lengths differ: {y_true.shape} vs {y_score.shape}"
        )
    if y_true.size == 0:
        raise DataError("metrics need at least one sample")
    if not np.isin(np.unique(y_true), (0, 1)).all():
        raise DataError("y_true must contain only 0/1 labels")
    if not np.isfinite(y_score).all():
        raise DataError("y_score contains non-finite values")
    return y_true.astype(np.int64), y_score


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via midrank statistics (handles ties).

    Raises
    ------
    DataError
        If ``y_true`` contains a single class (AUC undefined).
    """
    y_true, y_score = _check_pair(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("AUC is undefined with a single class in y_true")
    ranks = _midranks(y_score)
    rank_sum_pos = ranks[y_true == 1].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def _midranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties assigned the average rank of their group."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve as (fpr, tpr, thresholds), thresholds descending."""
    y_true, y_score = _check_pair(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("ROC curve is undefined with a single class")
    order = np.argsort(-y_score, kind="mergesort")
    sorted_true = y_true[order]
    sorted_score = y_score[order]
    tps = np.cumsum(sorted_true)
    fps = np.cumsum(1 - sorted_true)
    # Keep only the last index of each distinct threshold.
    distinct = np.nonzero(np.diff(sorted_score))[0]
    idx = np.r_[distinct, sorted_true.size - 1]
    tpr = np.r_[0.0, tps[idx] / n_pos]
    fpr = np.r_[0.0, fps[idx] / n_neg]
    thresholds = np.r_[sorted_score[0] + 1.0, sorted_score[idx]]
    return fpr, tpr, thresholds


def log_loss(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Mean negative log-likelihood with probability clipping."""
    y_true, y_prob = _check_pair(y_true, y_prob)
    p = np.clip(y_prob, _EPS, 1.0 - _EPS)
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def brier_score(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Mean squared error between labels and predicted probabilities."""
    y_true, y_prob = _check_pair(y_true, y_prob)
    return float(np.mean((y_prob - y_true) ** 2))


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[int, int, int, int]:
    """Return (tn, fp, fn, tp) for hard 0/1 predictions."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    y_pred = y_pred.astype(np.int64)
    if not np.isin(np.unique(y_pred), (0, 1)).all():
        raise DataError("y_pred must contain only 0/1 labels")
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return tn, fp, fn, tp


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Positive predictive value; 0.0 when nothing is predicted positive."""
    __, fp, __, tp = confusion_counts(y_true, y_pred)
    return tp / (tp + fp) if tp + fp > 0 else 0.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """True-positive rate; 0.0 when there are no positives."""
    __, __, fn, tp = confusion_counts(y_true, y_pred)
    return tp / (tp + fn) if tp + fn > 0 else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    return 2 * p * r / (p + r) if p + r > 0 else 0.0


def calibration_curve(
    y_true: np.ndarray, y_prob: np.ndarray, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reliability diagram data: (mean predicted, observed rate, counts).

    Probabilities are binned on a uniform [0, 1] grid; empty bins are
    dropped. Bin boundaries are half-open except the last.
    """
    y_true, y_prob = _check_pair(y_true, y_prob)
    if n_bins < 1:
        raise DataError(f"n_bins must be >= 1, got {n_bins}")
    if (y_prob < 0).any() or (y_prob > 1).any():
        raise DataError("probabilities must lie in [0, 1]")
    bin_idx = np.minimum((y_prob * n_bins).astype(int), n_bins - 1)
    mean_pred, observed, counts = [], [], []
    for b in range(n_bins):
        mask = bin_idx == b
        if not mask.any():
            continue
        mean_pred.append(float(y_prob[mask].mean()))
        observed.append(float(y_true[mask].mean()))
        counts.append(int(mask.sum()))
    return np.asarray(mean_pred), np.asarray(observed), np.asarray(counts)


def expected_calibration_error(
    y_true: np.ndarray, y_prob: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: count-weighted mean |observed - predicted| across bins."""
    mean_pred, observed, counts = calibration_curve(y_true, y_prob, n_bins)
    weights = counts / counts.sum()
    return float(np.sum(weights * np.abs(observed - mean_pred)))


def average_precision_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the precision-recall curve (step-function integral)."""
    y_true, y_score = _check_pair(y_true, y_score)
    n_pos = int(y_true.sum())
    if n_pos == 0:
        raise DataError("average precision is undefined without positives")
    order = np.argsort(-y_score, kind="mergesort")
    sorted_true = y_true[order]
    tps = np.cumsum(sorted_true)
    precision = tps / np.arange(1, y_true.size + 1)
    recall = tps / n_pos
    recall_steps = np.diff(np.r_[0.0, recall])
    return float(np.sum(precision * recall_steps))
