"""Binary Gaussian-process classifier with the Laplace approximation.

The paper's key enhancement (Section IV): GP weak learners "compute a
variance value associated with each prediction based on confidence from the
training data", which downstream becomes the uncertainty score exploited by
the robust patrol planner.

This implementation follows Rasmussen & Williams (2006) Algorithms 3.1
(Newton mode finding for the latent posterior) and 3.2 (prediction), with a
logistic likelihood. :meth:`predict_variance` exposes the *latent predictive
variance* — the model-intrinsic uncertainty the paper contrasts with the
surrogate variance of bagged trees (Fig. 7).

Exact GPs are cubic in the training size; weak learners inside bagging
ensembles see small bootstraps, and a ``max_points`` cap (uniform subsample)
keeps stand-alone fits tractable, mirroring the sparse-data regime of the
real deployments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.ml.base import Classifier
from repro.ml.calibration import _stable_sigmoid
from repro.ml.kernels import RBFKernel
from repro.ml.scaling import StandardScaler


class GaussianProcessClassifier(Classifier):
    """Laplace-approximated binary GP classifier.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to an RBF whose lengthscale is set by
        the median-distance heuristic at fit time.
    max_points:
        Cap on training points (uniform subsample beyond it). Exact GP cost
        is O(n^3); the default keeps a fit under ~50 ms.
    max_newton_iter:
        Newton iterations for the posterior mode.
    tol:
        Convergence tolerance on the mode objective.
    jitter:
        Diagonal regularisation added to the kernel matrix.
    rng:
        Randomness for the ``max_points`` subsample.
    """

    supports_variance = True

    def __init__(
        self,
        kernel: RBFKernel | None = None,
        max_points: int = 400,
        max_newton_iter: int = 50,
        tol: float = 1e-6,
        jitter: float = 1e-6,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if max_points < 2:
            raise ConfigurationError(f"max_points must be >= 2, got {max_points}")
        self.kernel = kernel
        self.max_points = max_points
        self.max_newton_iter = max_newton_iter
        self.tol = tol
        self.jitter = jitter
        self.rng = rng or np.random.default_rng()
        self._scaler = StandardScaler()
        self._X_train: np.ndarray | None = None
        self._grad_at_mode: np.ndarray | None = None
        self._sqrt_w: np.ndarray | None = None
        self._chol_b: np.ndarray | None = None
        self._fitted_kernel: RBFKernel | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessClassifier":
        X, y01 = self._check_fit_input(X, y)
        if X.shape[0] > self.max_points:
            keep = self.rng.choice(X.shape[0], size=self.max_points, replace=False)
            X, y01 = X[keep], y01[keep]
        Xs = self._scaler.fit_transform(X)
        signs = np.where(y01 == 1, 1.0, -1.0)

        kernel = self.kernel or RBFKernel(
            lengthscale=self._median_heuristic(Xs), variance=1.0
        )
        K = kernel(Xs)
        K[np.diag_indices_from(K)] += self.jitter

        f = self._find_mode(K, signs)

        pi = _stable_sigmoid(f)
        w = pi * (1.0 - pi)
        sqrt_w = np.sqrt(np.maximum(w, 1e-12))
        B = np.eye(K.shape[0]) + sqrt_w[:, None] * K * sqrt_w[None, :]
        self._chol_b = np.linalg.cholesky(B)
        self._grad_at_mode = (signs + 1.0) / 2.0 - pi
        self._sqrt_w = sqrt_w
        self._X_train = Xs
        self._fitted_kernel = kernel
        self._mark_fitted()
        return self

    @staticmethod
    def _median_heuristic(Xs: np.ndarray) -> float:
        """Median pairwise distance on (a subsample of) the training set."""
        n = Xs.shape[0]
        sample = Xs if n <= 200 else Xs[:: max(1, n // 200)]
        sq = np.einsum("ij,ij->i", sample, sample)
        d2 = np.maximum(sq[:, None] + sq[None, :] - 2 * sample @ sample.T, 0.0)
        upper = d2[np.triu_indices_from(d2, k=1)]
        if upper.size == 0:
            return 1.0
        median = float(np.sqrt(np.median(upper)))
        return median if median > 1e-6 else 1.0

    def _find_mode(self, K: np.ndarray, signs: np.ndarray) -> np.ndarray:
        """Newton iteration for the Laplace posterior mode (R&W Alg. 3.1)."""
        n = K.shape[0]
        f = np.zeros(n)
        identity = np.eye(n)
        last_objective = -np.inf
        for _ in range(self.max_newton_iter):
            pi = _stable_sigmoid(f)
            w = np.maximum(pi * (1.0 - pi), 1e-12)
            sqrt_w = np.sqrt(w)
            B = identity + sqrt_w[:, None] * K * sqrt_w[None, :]
            L = np.linalg.cholesky(B)
            grad = (signs + 1.0) / 2.0 - pi
            b = w * f + grad
            rhs = sqrt_w * (K @ b)
            solved = np.linalg.solve(L.T, np.linalg.solve(L, rhs))
            a = b - sqrt_w * solved
            f = K @ a
            # Laplace objective: log p(y|f) - 0.5 a^T f
            log_lik = -np.sum(np.logaddexp(0.0, -signs * f))
            objective = float(log_lik - 0.5 * a @ f)
            if abs(objective - last_objective) < self.tol:
                return f
            last_objective = objective
        raise ConvergenceError(
            f"GP Laplace mode finding did not converge in {self.max_newton_iter} iterations"
        )

    # ------------------------------------------------------------------
    def _latent_moments(
        self, X: np.ndarray, tile_size: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latent predictive mean and variance (R&W Alg. 3.2).

        With ``tile_size``, test rows stream through in fixed-size tiles so
        the transient allocations (the ``(n_train, tile)`` cross-kernel slab
        and its triangular-solve workspace) never exceed
        ``O(n_train x tile_size)`` — the full ``(n_train, n_test)`` matrix is
        never materialised. Every statistic is computed independently per
        test row, so the tiled result is bit-identical to the one-pass one.
        """
        from repro.runtime.parallel import tile_slices

        X = self._check_predict_input(X)
        slices = tile_slices(X.shape[0], tile_size)
        if len(slices) == 1:
            return self._tile_latent_moments(X)
        mean = np.empty(X.shape[0])
        var = np.empty(X.shape[0])
        for sl in slices:
            mean[sl], var[sl] = self._tile_latent_moments(X[sl])
        return mean, var

    #: Narrow tiles are zero-padded to this many rows before the BLAS calls:
    #: kernels selected for very small operand widths accumulate in a
    #: different order than the wide ones, and the tiled-serving contract is
    #: that the tile size never changes a bit of the output. Padding rows
    #: are computed and discarded; every real row's result depends only on
    #: its own column of the cross-kernel, so the pad cannot perturb it.
    _MIN_TILE_ROWS = 8

    def _tile_latent_moments(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One tile of Alg. 3.2: scale, cross-kernel, solve — per test row."""
        assert self._X_train is not None and self._fitted_kernel is not None
        assert self._grad_at_mode is not None and self._sqrt_w is not None
        assert self._chol_b is not None
        n = X.shape[0]
        if n < self._MIN_TILE_ROWS:
            X = np.vstack(
                [X, np.zeros((self._MIN_TILE_ROWS - n, X.shape[1]))]
            )
        Xs = self._scaler.transform(X)
        k_star = self._fitted_kernel(self._X_train, Xs)  # (n_train, tile)
        # einsum keeps the reduction over the training rows in a fixed
        # order for every tile width, unlike the width-specialised GEMV.
        mean = np.einsum("ij,i->j", k_star, self._grad_at_mode)
        v = np.linalg.solve(self._chol_b, self._sqrt_w[:, None] * k_star)
        var = self._fitted_kernel.diag(Xs) + self.jitter - np.einsum("ij,ij->j", v, v)
        return mean[:n], np.maximum(var[:n], 0.0)

    def predict_proba(
        self, X: np.ndarray, tile_size: int | None = None
    ) -> np.ndarray:
        """Averaged predictive probability via the probit approximation.

        ``E[sigma(f*)] ~= sigma(mean / sqrt(1 + pi * var / 8))`` (MacKay 1992)
        integrates the logistic over the latent Gaussian.
        """
        mean, var = self._latent_moments(X, tile_size=tile_size)
        kappa = 1.0 / np.sqrt(1.0 + np.pi * var / 8.0)
        return _stable_sigmoid(kappa * mean)

    def predict_variance(
        self, X: np.ndarray, tile_size: int | None = None
    ) -> np.ndarray:
        """Latent predictive variance — the paper's uncertainty metric."""
        __, var = self._latent_moments(X, tile_size=tile_size)
        return var

    def prediction_stats(
        self, X: np.ndarray, tile_size: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probability and variance from a single latent-moments pass.

        Separate ``predict_proba`` / ``predict_variance`` calls each solve
        the (n_train × n_test) triangular system; serving paths that need
        both should use this instead.
        """
        mean, var = self._latent_moments(X, tile_size=tile_size)
        kappa = 1.0 / np.sqrt(1.0 + np.pi * var / 8.0)
        return _stable_sigmoid(kappa * mean), var

    # ------------------------------------------------------------------
    def to_manifest(self, store, prefix: str) -> dict:
        from repro.exceptions import NotFittedError
        from repro.runtime.persistence import encode_kernel, encode_standard_scaler

        if self._X_train is None or self._fitted_kernel is None:
            raise NotFittedError(
                "cannot persist an unfitted GaussianProcessClassifier"
            )
        assert self._grad_at_mode is not None and self._sqrt_w is not None
        assert self._chol_b is not None
        return {
            "type": "GaussianProcessClassifier",
            "config": {
                "max_points": self.max_points,
                "max_newton_iter": self.max_newton_iter,
                "tol": self.tol,
                "jitter": self.jitter,
            },
            "n_features": self._n_features,
            "kernel": encode_kernel(self._fitted_kernel),
            "kernel_was_explicit": self.kernel is not None,
            "scaler": encode_standard_scaler(self._scaler, store, prefix),
            "arrays": {
                "X_train": store.put(f"{prefix}/X_train", self._X_train),
                "grad_at_mode": store.put(
                    f"{prefix}/grad_at_mode", self._grad_at_mode
                ),
                "sqrt_w": store.put(f"{prefix}/sqrt_w", self._sqrt_w),
                "chol_b": store.put(f"{prefix}/chol_b", self._chol_b),
            },
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "GaussianProcessClassifier":
        from repro.runtime.persistence import (
            decode_kernel,
            decode_standard_scaler,
            get_array,
        )

        kernel = decode_kernel(node["kernel"])
        model = cls(
            kernel=kernel if node["kernel_was_explicit"] else None,
            **node["config"],
        )
        refs = node["arrays"]
        model._X_train = get_array(arrays, refs["X_train"]).astype(float)
        model._grad_at_mode = get_array(arrays, refs["grad_at_mode"]).astype(float)
        model._sqrt_w = get_array(arrays, refs["sqrt_w"]).astype(float)
        model._chol_b = get_array(arrays, refs["chol_b"]).astype(float)
        model._fitted_kernel = kernel
        model._scaler = decode_standard_scaler(node["scaler"], arrays)
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model
