"""From-scratch machine-learning substrate.

The paper builds iWare-E ensembles out of bagging ensembles of SVMs, decision
trees, or Gaussian-process classifiers (scikit-learn / imbalanced-learn in
the original). None of those libraries are available offline, so this
subpackage implements the needed pieces directly:

* :mod:`repro.ml.tree` — CART decision-tree classifier.
* :mod:`repro.ml.bagging` — bagging and *balanced* bagging (negative-class
  undersampling, the paper's answer to SWS's 0.36% positive rate).
* :mod:`repro.ml.svm` — linear SVM via dual coordinate descent with Platt
  scaling for probabilities.
* :mod:`repro.ml.gp` — binary Gaussian-process classifier with the Laplace
  approximation, exposing the latent predictive variance the paper exploits.
* :mod:`repro.ml.metrics` — AUC, log-loss, and friends.
* :mod:`repro.ml.model_selection` — k-fold and stratified k-fold CV.
* :mod:`repro.ml.jackknife` — infinitesimal-jackknife variance for bagged
  trees (Wager, Hastie & Efron 2014), the paper's Fig. 7 comparison.
"""

from repro.ml.base import Classifier, check_binary_labels
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.bagging import BaggingClassifier, BalancedBaggingClassifier
from repro.ml.svm import LinearSVMClassifier
from repro.ml.kernels import RBFKernel
from repro.ml.gp import GaussianProcessClassifier
from repro.ml.calibration import PlattScaler
from repro.ml.isotonic import IsotonicCalibrator, pava
from repro.ml.linear import LogisticRegression, PUWeightedLogisticRegression
from repro.ml.metrics import (
    average_precision_score,
    brier_score,
    calibration_curve,
    confusion_counts,
    expected_calibration_error,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from repro.ml.model_selection import KFold, StratifiedKFold, train_test_split
from repro.ml.scaling import MinMaxScaler, StandardScaler, logistic_squash
from repro.ml.jackknife import infinitesimal_jackknife_variance

__all__ = [
    "Classifier",
    "check_binary_labels",
    "DecisionTreeClassifier",
    "BaggingClassifier",
    "BalancedBaggingClassifier",
    "LinearSVMClassifier",
    "RBFKernel",
    "GaussianProcessClassifier",
    "PlattScaler",
    "IsotonicCalibrator",
    "pava",
    "LogisticRegression",
    "PUWeightedLogisticRegression",
    "calibration_curve",
    "expected_calibration_error",
    "roc_auc_score",
    "roc_curve",
    "log_loss",
    "brier_score",
    "confusion_counts",
    "precision_score",
    "recall_score",
    "f1_score",
    "average_precision_score",
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "StandardScaler",
    "MinMaxScaler",
    "logistic_squash",
    "infinitesimal_jackknife_variance",
]
