"""Bagging and balanced bagging ensembles.

Bagging ensembles of SVMs / decision trees / GPs are the paper's weak
learners (Section IV). For SWS's 0.36% positive rate, the paper switches to
*balanced* bagging — undersampling the negative class per bootstrap
(imbalanced-learn's BalancedBaggingClassifier) — which "improved our AUC by
15% on average" (Section V-A). Both variants are implemented here.

The ensemble also records per-estimator in-bag counts so the infinitesimal
jackknife (:mod:`repro.ml.jackknife`) can compute random-forest confidence
intervals for the Fig. 7 comparison.

Fitting is optionally parallel (``n_jobs`` workers on a ``backend`` pool):
bootstrap indices and member construction still run serially, so every draw
from the shared generator happens in the same order as a serial fit, and only
the independent member ``fit`` calls fan out — results are bit-identical
either way (see :mod:`repro.runtime.parallel`). The phase-2 task object
(:class:`_MemberFits`) carries no factory closure, so whole deferred fits can
cross a process boundary: pure-Python weak learners (trees, SVMs) scale with
cores instead of serialising behind the GIL.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml.base import Classifier, ConstantClassifier


def _unavailable_factory() -> Classifier:
    """Placeholder base factory installed on models loaded from disk."""
    raise ConfigurationError(
        "this bagging ensemble was loaded from disk and cannot be refit: "
        "weak-learner factories are not persisted (construct a fresh model "
        "to retrain)"
    )


def _fit_member(
    task: tuple[Classifier, np.ndarray | None, np.ndarray | None]
) -> Classifier:
    """Fit one bootstrap member (module-level so process pools can map it)."""
    member, Xb, yb = task
    return member if Xb is None else member.fit(Xb, yb)


class _MemberFits:
    """Picklable phase-2 task of a bagging fit.

    Holds the pre-drawn bootstrap tasks and the in-bag matrix; calling it
    fits every member (optionally through a nested pool) and returns the
    fitted ensemble. The ensemble reference survives pickling because
    :class:`BaggingClassifier` drops its factory closure from the pickle
    state — by phase 2 all members are already constructed, so the factory
    is no longer needed.
    """

    def __init__(
        self,
        ensemble: "BaggingClassifier",
        tasks: list[tuple[Classifier, np.ndarray | None, np.ndarray | None]],
        inbag: np.ndarray,
    ):
        self.ensemble = ensemble
        self.tasks = tasks
        self.inbag = inbag

    @property
    def backend_hint(self) -> str:
        from repro.runtime.parallel import vote_backend

        return vote_backend(
            [member.fit_backend_hint for member, __, __ in self.tasks]
        )

    def __call__(self) -> "BaggingClassifier":
        import pickle

        from repro.runtime.parallel import parallel_map

        ensemble = self.ensemble
        auto = ensemble.backend == "auto"
        if auto:
            backend = "process" if self.backend_hint == "process" else "thread"
        else:
            backend = ensemble.backend
        try:
            members = parallel_map(
                _fit_member, self.tasks, n_jobs=ensemble.n_jobs,
                backend=backend,
            )
        except (pickle.PicklingError, AttributeError, TypeError):
            if not auto:
                raise
            # Auto mode's contract: members that turn out not to pickle
            # (e.g. locally defined classes) fall back to the thread pool
            # instead of erroring. Member fits are pure, so re-running is
            # safe.
            members = parallel_map(
                _fit_member, self.tasks, n_jobs=ensemble.n_jobs,
                backend="thread",
            )
        ensemble.estimators_ = members
        ensemble.inbag_counts_ = self.inbag
        ensemble._mark_fitted()
        return ensemble


class BaggingClassifier(Classifier):
    """Bootstrap-aggregated ensemble of probabilistic classifiers.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing a fresh unfit base classifier. A
        factory (not a prototype) sidesteps any cloning machinery.
    n_estimators:
        Number of bootstrap members.
    max_samples:
        Bootstrap size as a fraction of the training set (0, 1].
    rng:
        Randomness for bootstrap sampling.
    n_jobs:
        Pool workers for member fitting (1 = serial, -1 = all cores).
        Parallel fits are bit-identical to serial ones.
    backend:
        Pool flavour for the member fits: ``"thread"``, ``"process"``, or
        ``"auto"`` (process iff every member's ``fit_backend_hint`` asks
        for it). See :mod:`repro.runtime.parallel`.
    """

    def __init__(
        self,
        base_factory: Callable[[], Classifier],
        n_estimators: int = 10,
        max_samples: float = 1.0,
        rng: np.random.Generator | None = None,
        n_jobs: int = 1,
        backend: str = "auto",
    ):
        super().__init__()
        from repro.runtime.parallel import check_backend

        if n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < max_samples <= 1.0:
            raise ConfigurationError(f"max_samples must be in (0, 1], got {max_samples}")
        self.base_factory = base_factory
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.rng = rng or np.random.default_rng()
        self.n_jobs = n_jobs
        self.backend = check_backend(backend)
        self.estimators_: list[Classifier] = []
        #: (n_estimators, n_train) in-bag multiplicity matrix for jackknife.
        self.inbag_counts_: np.ndarray | None = None

    def __getstate__(self) -> dict:
        # Factory closures cannot cross a process boundary; by the time a
        # bagging ensemble travels (phase-2 fit tasks, fitted results coming
        # back) its members are already constructed, so an unpicklable
        # factory is replaced by the explanatory placeholder. Picklable
        # factories (module-level functions) are preserved, so ordinary
        # pickling/deepcopy of a refittable ensemble keeps working.
        import pickle

        state = self.__dict__.copy()
        try:
            pickle.dumps(state["base_factory"])
        except Exception:
            state["base_factory"] = _unavailable_factory
        return state

    # ------------------------------------------------------------------
    def _bootstrap_indices(self, y: np.ndarray) -> np.ndarray:
        n = y.size
        size = max(1, int(round(self.max_samples * n)))
        return self.rng.integers(0, n, size=size)

    def fit_deferred(self, X: np.ndarray, y: np.ndarray):
        """Phase 1 now (all shared-generator draws), phase 2 in the task.

        Bootstrap indices come from this ensemble's generator and member
        construction typically draws child seeds from a factory's *master*
        generator, so both happen here, serially, in the exact order of a
        serial fit. The returned :class:`_MemberFits` task only runs the
        independent member fits (optionally pooled) — parallel results are
        bit-identical — and is picklable, so an outer ensemble may run it in
        a worker process.
        """
        X, y = self._check_fit_input(X, y)
        n = y.size
        inbag = np.zeros((self.n_estimators, n), dtype=np.int64)
        tasks: list[tuple[Classifier, np.ndarray | None, np.ndarray | None]] = []
        for b in range(self.n_estimators):
            idx = self._bootstrap_indices(y)
            np.add.at(inbag[b], idx, 1)
            Xb, yb = X[idx], y[idx]
            if yb.min() == yb.max():
                # Single-class bootstrap: fall back to a constant model so
                # the ensemble survives extreme imbalance.
                tasks.append((ConstantClassifier().fit(Xb, yb), None, None))
            else:
                tasks.append((self.base_factory(), Xb, yb))
        return _MemberFits(self, tasks, inbag)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaggingClassifier":
        return self.fit_deferred(X, y)()

    # ------------------------------------------------------------------
    @property
    def predict_backend_hint(self) -> str:
        """Serving-pool vote: what this ensemble's members predict like.

        A DTB ensemble is GIL-bound per-level tree traversal all the way
        down (``"process"``); a GPB ensemble is BLAS solves (``"thread"``).
        Mirrors the phase-2 fit vote so ``backend="auto"`` serving fan-outs
        route whole ensembles the same way fitting did.
        """
        from repro.runtime.parallel import vote_backend

        if not self.estimators_:
            return "thread"
        return vote_backend(
            [getattr(m, "predict_backend_hint", "thread") for m in self.estimators_]
        )

    def member_probabilities(self, X: np.ndarray) -> np.ndarray:
        """``(n_estimators, n_samples)`` probabilities of each member."""
        X = self._check_predict_input(X)
        if not self.estimators_:
            raise NotFittedError("bagging ensemble has no members")
        return np.stack([m.predict_proba(X) for m in self.estimators_])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.member_probabilities(X).mean(axis=0)

    def predict_variance(self, X: np.ndarray) -> np.ndarray:
        """Between-member variance of the predicted probabilities.

        The paper's Fig. 7 uses this heuristic ("the variance between
        predictions made by the bagged learners") and shows it is nearly a
        deterministic function of the prediction itself — i.e. a poor
        uncertainty signal. When the base learner is a GP, the intrinsic GP
        variance is averaged in instead (and ``supports_variance`` is set by
        the caller via :meth:`mean_member_variance`).
        """
        return self.member_probabilities(X).var(axis=0)

    def mean_member_variance(self, X: np.ndarray) -> np.ndarray:
        """Average the members' intrinsic variances (GP weak learners).

        Falls back to the between-member variance when no member exposes an
        intrinsic uncertainty.
        """
        X = self._check_predict_input(X)
        intrinsic = [m for m in self.estimators_ if m.supports_variance]
        if not intrinsic:
            return self.predict_variance(X)
        return np.stack([m.predict_variance(X) for m in intrinsic]).mean(axis=0)

    def prediction_stats(
        self,
        X: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean probability and :meth:`mean_member_variance` in one sweep.

        Separate ``predict_proba`` + ``mean_member_variance`` calls run every
        member twice (and GP members re-solve their latent moments each
        time); this visits each member once via its own ``prediction_stats``.
        ``tile_size`` / ``n_jobs`` / ``backend`` fan the ``(member x tile)``
        sweep out through :func:`repro.runtime.parallel.predict_map` — tiled
        and parallel results are bit-identical to the serial defaults, and
        per-member transient memory stays ``O(n_train x tile_size)``.
        """
        from repro.runtime.parallel import predict_map

        X = self._check_predict_input(X)
        if not self.estimators_:
            raise NotFittedError("bagging ensemble has no members")
        stats = predict_map(
            self.estimators_, X,
            tile_size=tile_size, n_jobs=n_jobs, backend=backend,
        )
        member_probs = np.stack([p for p, __ in stats])
        mean = member_probs.mean(axis=0)
        intrinsic = [
            v for (__, v), m in zip(stats, self.estimators_) if m.supports_variance
        ]
        if intrinsic:
            return mean, np.stack(intrinsic).mean(axis=0)
        return mean, member_probs.var(axis=0)

    @property
    def has_intrinsic_variance(self) -> bool:
        """Whether at least one member reports model-intrinsic uncertainty."""
        return any(m.supports_variance for m in self.estimators_)

    # ------------------------------------------------------------------
    def _config_manifest(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_samples": self.max_samples,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
        }

    def to_manifest(self, store, prefix: str) -> dict:
        if not self.estimators_:
            raise NotFittedError(f"cannot persist an unfitted {type(self).__name__}")
        assert self.inbag_counts_ is not None
        return {
            "type": type(self).__name__,
            "config": self._config_manifest(),
            "n_features": self._n_features,
            "estimators": [
                member.to_manifest(store, f"{prefix}/estimators/{i}")
                for i, member in enumerate(self.estimators_)
            ],
            "arrays": {
                "inbag_counts": store.put(
                    f"{prefix}/inbag_counts", self.inbag_counts_
                )
            },
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "BaggingClassifier":
        from repro.runtime.persistence import decode_node, get_array

        model = cls(_unavailable_factory, **node["config"])
        model.estimators_ = [
            decode_node(child, arrays) for child in node["estimators"]
        ]
        model.inbag_counts_ = get_array(
            arrays, node["arrays"]["inbag_counts"]
        ).astype(np.int64)
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model


class BalancedBaggingClassifier(BaggingClassifier):
    """Bagging with random undersampling of the negative class.

    Each bootstrap draws *all-but-balanced* samples: positives are resampled
    with replacement, negatives are undersampled to ``ratio`` times the
    positive count. The paper prefers undersampling to oversampling "because
    the positive labels are inherently noisy" (Section V-A).

    Parameters
    ----------
    ratio:
        Negative-to-positive ratio per bootstrap; 1.0 is fully balanced.
    """

    def __init__(
        self,
        base_factory: Callable[[], Classifier],
        n_estimators: int = 10,
        ratio: float = 1.0,
        rng: np.random.Generator | None = None,
        n_jobs: int = 1,
        backend: str = "auto",
    ):
        super().__init__(base_factory, n_estimators=n_estimators, rng=rng,
                         n_jobs=n_jobs, backend=backend)
        if ratio <= 0:
            raise ConfigurationError(f"ratio must be positive, got {ratio}")
        self.ratio = ratio

    def fit_deferred(self, X: np.ndarray, y: np.ndarray):
        y_checked = np.asarray(y)
        if y_checked.size and y_checked.sum() == 0:
            raise DataError("balanced bagging requires at least one positive label")
        return super().fit_deferred(X, y)

    def _bootstrap_indices(self, y: np.ndarray) -> np.ndarray:
        pos = np.nonzero(y == 1)[0]
        neg = np.nonzero(y == 0)[0]
        n_pos = pos.size
        n_neg_draw = max(1, int(round(self.ratio * n_pos)))
        pos_draw = self.rng.choice(pos, size=n_pos, replace=True)
        if neg.size == 0:
            return pos_draw
        neg_draw = self.rng.choice(neg, size=n_neg_draw, replace=neg.size < n_neg_draw)
        return np.concatenate([pos_draw, neg_draw])

    def _config_manifest(self) -> dict:
        config = super()._config_manifest()
        # The balanced variant has no max_samples knob (bootstrap size is
        # set by the positive count and ratio instead).
        del config["max_samples"]
        config["ratio"] = self.ratio
        return config
