"""Bagging and balanced bagging ensembles.

Bagging ensembles of SVMs / decision trees / GPs are the paper's weak
learners (Section IV). For SWS's 0.36% positive rate, the paper switches to
*balanced* bagging — undersampling the negative class per bootstrap
(imbalanced-learn's BalancedBaggingClassifier) — which "improved our AUC by
15% on average" (Section V-A). Both variants are implemented here.

The ensemble also records per-estimator in-bag counts so the infinitesimal
jackknife (:mod:`repro.ml.jackknife`) can compute random-forest confidence
intervals for the Fig. 7 comparison.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml.base import Classifier, ConstantClassifier


class BaggingClassifier(Classifier):
    """Bootstrap-aggregated ensemble of probabilistic classifiers.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing a fresh unfit base classifier. A
        factory (not a prototype) sidesteps any cloning machinery.
    n_estimators:
        Number of bootstrap members.
    max_samples:
        Bootstrap size as a fraction of the training set (0, 1].
    rng:
        Randomness for bootstrap sampling.
    """

    def __init__(
        self,
        base_factory: Callable[[], Classifier],
        n_estimators: int = 10,
        max_samples: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < max_samples <= 1.0:
            raise ConfigurationError(f"max_samples must be in (0, 1], got {max_samples}")
        self.base_factory = base_factory
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.rng = rng or np.random.default_rng()
        self.estimators_: list[Classifier] = []
        #: (n_estimators, n_train) in-bag multiplicity matrix for jackknife.
        self.inbag_counts_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _bootstrap_indices(self, y: np.ndarray) -> np.ndarray:
        n = y.size
        size = max(1, int(round(self.max_samples * n)))
        return self.rng.integers(0, n, size=size)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaggingClassifier":
        X, y = self._check_fit_input(X, y)
        n = y.size
        self.estimators_ = []
        inbag = np.zeros((self.n_estimators, n), dtype=np.int64)
        for b in range(self.n_estimators):
            idx = self._bootstrap_indices(y)
            np.add.at(inbag[b], idx, 1)
            Xb, yb = X[idx], y[idx]
            if yb.min() == yb.max():
                # Single-class bootstrap: fall back to a constant model so
                # the ensemble survives extreme imbalance.
                member: Classifier = ConstantClassifier().fit(Xb, yb)
            else:
                member = self.base_factory().fit(Xb, yb)
            self.estimators_.append(member)
        self.inbag_counts_ = inbag
        self._mark_fitted()
        return self

    # ------------------------------------------------------------------
    def member_probabilities(self, X: np.ndarray) -> np.ndarray:
        """``(n_estimators, n_samples)`` probabilities of each member."""
        X = self._check_predict_input(X)
        if not self.estimators_:
            raise NotFittedError("bagging ensemble has no members")
        return np.stack([m.predict_proba(X) for m in self.estimators_])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.member_probabilities(X).mean(axis=0)

    def predict_variance(self, X: np.ndarray) -> np.ndarray:
        """Between-member variance of the predicted probabilities.

        The paper's Fig. 7 uses this heuristic ("the variance between
        predictions made by the bagged learners") and shows it is nearly a
        deterministic function of the prediction itself — i.e. a poor
        uncertainty signal. When the base learner is a GP, the intrinsic GP
        variance is averaged in instead (and ``supports_variance`` is set by
        the caller via :meth:`mean_member_variance`).
        """
        return self.member_probabilities(X).var(axis=0)

    def mean_member_variance(self, X: np.ndarray) -> np.ndarray:
        """Average the members' intrinsic variances (GP weak learners).

        Falls back to the between-member variance when no member exposes an
        intrinsic uncertainty.
        """
        X = self._check_predict_input(X)
        intrinsic = [m for m in self.estimators_ if m.supports_variance]
        if not intrinsic:
            return self.predict_variance(X)
        return np.stack([m.predict_variance(X) for m in intrinsic]).mean(axis=0)

    @property
    def has_intrinsic_variance(self) -> bool:
        """Whether at least one member reports model-intrinsic uncertainty."""
        return any(m.supports_variance for m in self.estimators_)


class BalancedBaggingClassifier(BaggingClassifier):
    """Bagging with random undersampling of the negative class.

    Each bootstrap draws *all-but-balanced* samples: positives are resampled
    with replacement, negatives are undersampled to ``ratio`` times the
    positive count. The paper prefers undersampling to oversampling "because
    the positive labels are inherently noisy" (Section V-A).

    Parameters
    ----------
    ratio:
        Negative-to-positive ratio per bootstrap; 1.0 is fully balanced.
    """

    def __init__(
        self,
        base_factory: Callable[[], Classifier],
        n_estimators: int = 10,
        ratio: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(base_factory, n_estimators=n_estimators, rng=rng)
        if ratio <= 0:
            raise ConfigurationError(f"ratio must be positive, got {ratio}")
        self.ratio = ratio
        self._y_cache: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BalancedBaggingClassifier":
        y_checked = np.asarray(y)
        if y_checked.size and y_checked.sum() == 0:
            raise DataError("balanced bagging requires at least one positive label")
        self._y_cache = y_checked
        try:
            return super().fit(X, y)  # type: ignore[return-value]
        finally:
            self._y_cache = None

    def _bootstrap_indices(self, y: np.ndarray) -> np.ndarray:
        pos = np.nonzero(y == 1)[0]
        neg = np.nonzero(y == 0)[0]
        n_pos = pos.size
        n_neg_draw = max(1, int(round(self.ratio * n_pos)))
        pos_draw = self.rng.choice(pos, size=n_pos, replace=True)
        if neg.size == 0:
            return pos_draw
        neg_draw = self.rng.choice(neg, size=n_neg_draw, replace=neg.size < n_neg_draw)
        return np.concatenate([pos_draw, neg_draw])
