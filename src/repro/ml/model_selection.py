"""Dataset splitting utilities: train/test split, k-fold, stratified k-fold.

The iWare-E weight optimisation (Section IV, first enhancement) performs
5-fold cross-validation to minimise log-loss; with 0.36% positives a plain
k-fold can easily produce folds without any positive sample, so the
stratified variant is the default throughout the library.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import ConfigurationError, DataError


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split into train and test partitions.

    Parameters
    ----------
    test_fraction:
        Fraction of rows assigned to the test partition, in (0, 1).
    stratify:
        Preserve the label ratio in both partitions (recommended under the
        extreme imbalance of poaching data).

    Returns
    -------
    (X_train, X_test, y_train, y_test)
    """
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise DataError("X and y row counts differ")
    rng = rng or np.random.default_rng()
    n = X.shape[0]
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.nonzero(y == label)[0]
            perm = rng.permutation(members)
            n_test = max(1, int(round(test_fraction * members.size)))
            if n_test >= members.size:
                n_test = members.size - 1
            if n_test > 0:
                test_idx.extend(perm[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[np.asarray(test_idx, dtype=int)] = True
    else:
        perm = rng.permutation(n)
        n_test = max(1, int(round(test_fraction * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[perm[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Plain k-fold cross-validation with optional shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 rng: np.random.Generator | None = None):
        if n_splits < 2:
            raise ConfigurationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        if n_samples < self.n_splits:
            raise DataError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = self.rng.permutation(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield np.sort(train_idx), np.sort(test_idx)


class StratifiedKFold:
    """K-fold that spreads each label class evenly across folds."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 rng: np.random.Generator | None = None):
        if n_splits < 2:
            raise ConfigurationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs stratified on ``y``."""
        y = np.asarray(y)
        if y.ndim != 1:
            raise DataError(f"labels must be 1-D, got shape {y.shape}")
        if y.size < self.n_splits:
            raise DataError(
                f"cannot split {y.size} samples into {self.n_splits} folds"
            )
        fold_of = np.empty(y.size, dtype=int)
        for label in np.unique(y):
            members = np.nonzero(y == label)[0]
            if self.shuffle:
                members = self.rng.permutation(members)
            # Deal members round-robin so every fold gets its share.
            fold_of[members] = np.arange(members.size) % self.n_splits
        for i in range(self.n_splits):
            test_idx = np.nonzero(fold_of == i)[0]
            train_idx = np.nonzero(fold_of != i)[0]
            if test_idx.size == 0:
                continue
            yield train_idx, test_idx
