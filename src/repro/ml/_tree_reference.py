"""The original recursive CART builder, kept as executable specification.

:class:`~repro.ml.tree.DecisionTreeClassifier` grew trees with this
implementation until the presorted packed-array builder replaced it: per node
it re-argsorted each candidate feature of the node's sub-matrix and recursed
on boolean-masked copies of ``X``. The rewrite is contract-bound to produce
*identical* trees (same packed arrays, same predictions, same RNG
consumption), so the old builder lives on here for the golden equivalence
tests in ``tests/test_tree_golden.py`` and the fit-throughput benchmark.

Nothing in the package imports this module on a hot path.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import _Node, _flatten_tree


def reference_fit_arrays(tree, X: np.ndarray, y: np.ndarray) -> dict[str, np.ndarray]:
    """Grow a tree with the original recursive builder; return packed arrays.

    Parameters
    ----------
    tree:
        An unfitted :class:`~repro.ml.tree.DecisionTreeClassifier` supplying
        the hyper-parameters and the RNG (consumed exactly as the original
        implementation consumed it: one ``_candidate_features`` draw per
        non-stopped node, in depth-first preorder).
    X, y:
        Validated training data (``tree._check_fit_input`` output).
    """
    root = _build(tree, X, y, depth=0)
    return _flatten_tree(root)


def reference_predict(root: _Node, X: np.ndarray) -> np.ndarray:
    """Recursive per-node prediction of the original implementation."""
    out = np.empty(X.shape[0])
    _fill(root, X, np.arange(X.shape[0]), out)
    return out


def _build(tree, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
    node = _Node(probability=_leaf_probability(tree, y), n_samples=y.size)
    if _should_stop(tree, y, depth):
        return node
    feature, threshold = _best_split(tree, X, y)
    if feature < 0:
        return node
    left_mask = X[:, feature] <= threshold
    node.feature = feature
    node.threshold = threshold
    node.left = _build(tree, X[left_mask], y[left_mask], depth + 1)
    node.right = _build(tree, X[~left_mask], y[~left_mask], depth + 1)
    return node


def _should_stop(tree, y: np.ndarray, depth: int) -> bool:
    if y.size < tree.min_samples_split:
        return True
    if tree.max_depth is not None and depth >= tree.max_depth:
        return True
    return bool(y.min() == y.max())  # pure node


def _leaf_probability(tree, y: np.ndarray) -> float:
    a = tree.laplace
    return float((y.sum() + a) / (y.size + 2 * a))


def _best_split(tree, X: np.ndarray, y: np.ndarray) -> tuple[int, float]:
    """Return (feature, threshold) of the best Gini split, or (-1, 0)."""
    best_feature = -1
    best_threshold = 0.0
    best_score = np.inf
    n = y.size
    min_leaf = tree.min_samples_leaf
    for feature in tree._candidate_features(X.shape[1]):
        values = X[:, feature]
        order = np.argsort(values, kind="mergesort")
        sorted_vals = values[order]
        sorted_y = y[order]
        # After sorting, a split between positions i-1 and i puts i
        # samples on the left.
        pos_prefix = np.cumsum(sorted_y)
        total_pos = pos_prefix[-1]
        counts_left = np.arange(1, n)
        # Splits are only valid between distinct feature values.
        distinct = sorted_vals[1:] != sorted_vals[:-1]
        valid = distinct & (counts_left >= min_leaf) & (n - counts_left >= min_leaf)
        if not valid.any():
            continue
        pos_left = pos_prefix[:-1]
        pos_right = total_pos - pos_left
        counts_right = n - counts_left
        with np.errstate(invalid="ignore", divide="ignore"):
            p_left = pos_left / counts_left
            p_right = pos_right / counts_right
            gini_left = 2 * p_left * (1 - p_left)
            gini_right = 2 * p_right * (1 - p_right)
            weighted = (counts_left * gini_left + counts_right * gini_right) / n
        weighted = np.where(valid, weighted, np.inf)
        idx = int(np.argmin(weighted))
        if weighted[idx] < best_score - 1e-12:
            best_score = float(weighted[idx])
            best_feature = int(feature)
            best_threshold = float(
                (sorted_vals[idx] + sorted_vals[idx + 1]) / 2.0
            )
    # Like classic CART, accept the best valid split even when the
    # immediate impurity gain is ~zero (XOR-style concepts only pay off
    # one level deeper); a node with no valid split stays a leaf.
    if best_feature >= 0 and np.isfinite(best_score):
        return best_feature, best_threshold
    return -1, 0.0


def _fill(node: _Node, X: np.ndarray, idx: np.ndarray, out: np.ndarray) -> None:
    if node.feature < 0 or node.left is None or node.right is None:
        out[idx] = node.probability
        return
    go_left = X[idx, node.feature] <= node.threshold
    if go_left.any():
        _fill(node.left, X, idx[go_left], out)
    if (~go_left).any():
        _fill(node.right, X, idx[~go_left], out)
