"""Feature scaling and score squashing.

The GP and SVM weak learners need standardised inputs; the planner squashes
GP variance to [0, 1] "through a logistic squashing function" (Section VI-C)
before it enters the robust objective.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, NotFittedError


class StandardScaler:
    """Column-wise z-scoring; constant columns are passed through centred."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataError(f"expected 2-D features, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Column-wise rescaling to [0, 1]; constant columns map to zero."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataError(f"expected 2-D features, got shape {X.shape}")
        self.min_ = X.min(axis=0)
        spread = X.max(axis=0) - self.min_
        spread[spread < 1e-12] = 1.0
        self.range_ = spread
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def logistic_squash(values: np.ndarray, midpoint: float = 0.0,
                    steepness: float = 1.0) -> np.ndarray:
    """Map arbitrary real scores into (0, 1) with a logistic curve.

    Used to normalise GP variance into an uncertainty score ``nu in [0, 1]``
    before it enters the robust planning objective (Eq. 4).
    """
    values = np.asarray(values, dtype=float)
    if steepness <= 0:
        raise DataError(f"steepness must be positive, got {steepness}")
    z = steepness * (values - midpoint)
    # Clip to keep exp() in range; the logistic saturates far before 500.
    z = np.clip(z, -500.0, 500.0)
    out = 1.0 / (1.0 + np.exp(-z))
    # Keep the output strictly inside (0, 1) even where float64 saturates,
    # so downstream log / division never sees an exact 0 or 1.
    return np.clip(out, 1e-12, 1.0 - 1e-12)
