"""Covariance kernels for Gaussian processes."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def _cross_products(X: np.ndarray, Z: np.ndarray) -> np.ndarray:
    """``X @ Z.T`` with a fixed, operand-independent reduction order.

    BLAS GEMM kernels are selected by operand geometry (and, observed with
    the bundled OpenBLAS, can vary with buffer placement for very wide
    operands), which perturbs the feature-reduction order — and therefore
    the last ulp — between a full-width cross-kernel and a tiled one.
    Serving guarantees bit-identical tiled/untiled surfaces, so the
    prediction-side cross products run through einsum's fixed summation-
    of-products loops instead: identical for every tile width, ~2x a GEMM
    on a reduction this small (k ~ a dozen features). The symmetric
    fit-time ``K(X)`` keeps the BLAS product — it is computed once, on one
    fixed-size training set, so there is nothing to keep consistent.
    """
    return np.einsum("ik,jk->ij", X, Z)


class RBFKernel:
    """Squared-exponential (RBF) kernel with signal variance.

    ``k(x, z) = variance * exp(-||x - z||^2 / (2 * lengthscale^2))``

    The isotropic RBF is the default covariance in the GP classifier, as in
    Rasmussen & Williams (2004), the implementation the paper cites.
    """

    def __init__(self, lengthscale: float = 1.0, variance: float = 1.0):
        if lengthscale <= 0:
            raise ConfigurationError(f"lengthscale must be positive, got {lengthscale}")
        if variance <= 0:
            raise ConfigurationError(f"variance must be positive, got {variance}")
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix between the rows of ``X`` and ``Z``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        symmetric = Z is None
        Z = X if symmetric else np.atleast_2d(np.asarray(Z, dtype=float))
        if X.shape[1] != Z.shape[1]:
            raise ConfigurationError(
                f"dimension mismatch: {X.shape[1]} vs {Z.shape[1]}"
            )
        x_sq = np.einsum("ij,ij->i", X, X)[:, None]
        z_sq = np.einsum("ij,ij->i", Z, Z)[None, :]
        prods = X @ Z.T if symmetric else _cross_products(X, Z)
        sq_dist = np.maximum(x_sq + z_sq - 2.0 * prods, 0.0)
        return self.variance * np.exp(-0.5 * sq_dist / self.lengthscale**2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``self(X, X)`` without forming the full matrix."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.full(X.shape[0], self.variance)

    def __repr__(self) -> str:
        return f"RBFKernel(lengthscale={self.lengthscale}, variance={self.variance})"


class MaternKernel:
    """Matern 3/2 kernel, a rougher alternative for ablation studies.

    ``k(r) = variance * (1 + sqrt(3) r / l) * exp(-sqrt(3) r / l)``
    """

    def __init__(self, lengthscale: float = 1.0, variance: float = 1.0):
        if lengthscale <= 0:
            raise ConfigurationError(f"lengthscale must be positive, got {lengthscale}")
        if variance <= 0:
            raise ConfigurationError(f"variance must be positive, got {variance}")
        self.lengthscale = float(lengthscale)
        self.variance = float(variance)

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        symmetric = Z is None
        Z = X if symmetric else np.atleast_2d(np.asarray(Z, dtype=float))
        if X.shape[1] != Z.shape[1]:
            raise ConfigurationError(
                f"dimension mismatch: {X.shape[1]} vs {Z.shape[1]}"
            )
        x_sq = np.einsum("ij,ij->i", X, X)[:, None]
        z_sq = np.einsum("ij,ij->i", Z, Z)[None, :]
        prods = X @ Z.T if symmetric else _cross_products(X, Z)
        r = np.sqrt(np.maximum(x_sq + z_sq - 2.0 * prods, 0.0))
        scaled = np.sqrt(3.0) * r / self.lengthscale
        return self.variance * (1.0 + scaled) * np.exp(-scaled)

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.full(X.shape[0], self.variance)

    def __repr__(self) -> str:
        return f"MaternKernel(lengthscale={self.lengthscale}, variance={self.variance})"
