"""Isotonic regression calibration (pool-adjacent-violators).

A nonparametric alternative to Platt scaling: fits the best monotone
nondecreasing map from scores to probabilities. Useful when a model's
scores are well-ordered but the sigmoid shape assumption of Platt scaling
does not hold — e.g. the output of the iWare-E mixture, whose prior
corrections bend the calibration curve.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, NotFittedError


def pava(values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Pool-adjacent-violators: the L2-optimal nondecreasing fit.

    Parameters
    ----------
    values:
        Sequence to be monotonised (in the given order).
    weights:
        Optional positive weights.

    Returns
    -------
    numpy.ndarray
        Nondecreasing sequence minimising the weighted squared error.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise DataError("pava expects a 1-D array")
    n = values.size
    if n == 0:
        raise DataError("pava needs at least one value")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != values.shape:
            raise DataError("weights must match values")
        if (weights <= 0).any():
            raise DataError("weights must be positive")

    # Stack of (block mean, block weight, block length).
    means: list[float] = []
    wsums: list[float] = []
    sizes: list[int] = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        wsums.append(float(weight))
        sizes.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            m2, w2, s2 = means.pop(), wsums.pop(), sizes.pop()
            m1, w1, s1 = means.pop(), wsums.pop(), sizes.pop()
            total = w1 + w2
            means.append((m1 * w1 + m2 * w2) / total)
            wsums.append(total)
            sizes.append(s1 + s2)
    out = np.empty(n)
    i = 0
    for mean, size in zip(means, sizes):
        out[i : i + size] = mean
        i += size
    return out


class IsotonicCalibrator:
    """Monotone score-to-probability calibration."""

    def __init__(self) -> None:
        self._xs: np.ndarray | None = None
        self._ys: np.ndarray | None = None

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "IsotonicCalibrator":
        """Fit the isotonic map on scores and {0,1} labels."""
        scores = np.asarray(scores, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if scores.shape != y.shape:
            raise DataError("scores and labels must have the same length")
        if scores.size == 0:
            raise DataError("cannot calibrate on an empty set")
        order = np.argsort(scores, kind="mergesort")
        fitted = pava(y[order])
        self._xs = scores[order]
        self._ys = fitted
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated probabilities (flat extrapolation at the ends)."""
        if self._xs is None or self._ys is None:
            raise NotFittedError("IsotonicCalibrator is not fitted")
        scores = np.asarray(scores, dtype=float)
        return np.interp(scores, self._xs, self._ys)

    def fit_transform(self, scores: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(scores, y).transform(scores)
