"""CART decision-tree classifier (Gini impurity).

The building block of the DTB weak learner: bagged trees with per-tree
feature subsampling (which makes the bagging ensemble "equivalent to a random
forest", Section V-C). Splits minimise weighted Gini impurity; leaves store
the positive-class fraction, optionally Laplace-smoothed so probabilities are
never exactly 0 or 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import Classifier


@dataclass
class _Node:
    """One tree node; ``feature < 0`` marks a leaf."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    probability: float = 0.5
    n_samples: int = 0


def _flatten_tree(root: _Node) -> dict[str, np.ndarray]:
    """Pack a node tree into parallel arrays (preorder; -1 = no child)."""
    features: list[int] = []
    thresholds: list[float] = []
    probabilities: list[float] = []
    n_samples: list[int] = []
    lefts: list[int] = []
    rights: list[int] = []

    def visit(node: _Node) -> int:
        idx = len(features)
        features.append(node.feature)
        thresholds.append(node.threshold)
        probabilities.append(node.probability)
        n_samples.append(node.n_samples)
        lefts.append(-1)
        rights.append(-1)
        if node.feature >= 0 and node.left is not None and node.right is not None:
            lefts[idx] = visit(node.left)
            rights[idx] = visit(node.right)
        return idx

    visit(root)
    return {
        "feature": np.asarray(features, dtype=np.int64),
        "threshold": np.asarray(thresholds, dtype=float),
        "probability": np.asarray(probabilities, dtype=float),
        "n_samples": np.asarray(n_samples, dtype=np.int64),
        "left": np.asarray(lefts, dtype=np.int64),
        "right": np.asarray(rights, dtype=np.int64),
    }


def _unflatten_tree(packed: dict[str, np.ndarray]) -> _Node:
    """Rebuild the node tree from :func:`_flatten_tree` arrays."""

    def build(idx: int) -> _Node:
        node = _Node(
            feature=int(packed["feature"][idx]),
            threshold=float(packed["threshold"][idx]),
            probability=float(packed["probability"][idx]),
            n_samples=int(packed["n_samples"][idx]),
        )
        left = int(packed["left"][idx])
        right = int(packed["right"][idx])
        if left >= 0 and right >= 0:
            node.left = build(left)
            node.right = build(right)
        return node

    return build(0)


class DecisionTreeClassifier(Classifier):
    """Binary CART tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity or minimum leaf size.
    min_samples_split:
        Minimum samples required to consider splitting a node.
    min_samples_leaf:
        Minimum samples that each child of a split must retain.
    max_features:
        Number of features examined per split; ``None`` = all, ``"sqrt"`` =
        square root of the feature count (random-forest style).
    laplace:
        Additive smoothing for leaf probabilities: ``(pos + a) / (n + 2a)``.
    rng:
        Randomness for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        laplace: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ConfigurationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        if laplace < 0:
            raise ConfigurationError(f"laplace must be >= 0, got {laplace}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.laplace = laplace
        self.rng = rng or np.random.default_rng()
        self._root: _Node | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = self._check_fit_input(X, y)
        self._root = self._build(X, y, depth=0)
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._check_predict_input(X)
        assert self._root is not None
        out = np.empty(X.shape[0])
        self._fill(self._root, X, np.arange(X.shape[0]), out)
        return out

    def to_manifest(self, store, prefix: str) -> dict:
        from repro.exceptions import NotFittedError

        if self._root is None:
            raise NotFittedError("cannot persist an unfitted DecisionTreeClassifier")
        packed = _flatten_tree(self._root)
        return {
            "type": "DecisionTreeClassifier",
            "config": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "laplace": self.laplace,
            },
            "n_features": self._n_features,
            "arrays": {
                name: store.put(f"{prefix}/{name}", array)
                for name, array in packed.items()
            },
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "DecisionTreeClassifier":
        from repro.runtime.persistence import get_array

        model = cls(**node["config"])
        model._root = _unflatten_tree(
            {name: get_array(arrays, key) for name, key in node["arrays"].items()}
        )
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes in the fitted tree."""
        if self._root is None:
            return 0
        return self._count_leaves(self._root)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (a lone root has depth 0)."""
        if self._root is None:
            return 0
        return self._depth_of(self._root)

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(probability=self._leaf_probability(y), n_samples=y.size)
        if self._should_stop(y, depth):
            return node
        feature, threshold = self._best_split(X, y)
        if feature < 0:
            return node
        left_mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[left_mask], y[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], y[~left_mask], depth + 1)
        return node

    def _should_stop(self, y: np.ndarray, depth: int) -> bool:
        if y.size < self.min_samples_split:
            return True
        if self.max_depth is not None and depth >= self.max_depth:
            return True
        return bool(y.min() == y.max())  # pure node

    def _leaf_probability(self, y: np.ndarray) -> float:
        a = self.laplace
        return float((y.sum() + a) / (y.size + 2 * a))

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(n_features)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(n_features)))
        else:
            k = int(self.max_features)
            if k < 1:
                raise ConfigurationError(f"max_features must be >= 1, got {k}")
            k = min(k, n_features)
        return self.rng.choice(n_features, size=k, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float]:
        """Return (feature, threshold) of the best Gini split, or (-1, 0)."""
        best_feature = -1
        best_threshold = 0.0
        best_score = np.inf
        n = y.size
        min_leaf = self.min_samples_leaf
        for feature in self._candidate_features(X.shape[1]):
            values = X[:, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_vals = values[order]
            sorted_y = y[order]
            # After sorting, a split between positions i-1 and i puts i
            # samples on the left.
            pos_prefix = np.cumsum(sorted_y)
            total_pos = pos_prefix[-1]
            counts_left = np.arange(1, n)
            # Splits are only valid between distinct feature values.
            distinct = sorted_vals[1:] != sorted_vals[:-1]
            valid = distinct & (counts_left >= min_leaf) & (n - counts_left >= min_leaf)
            if not valid.any():
                continue
            pos_left = pos_prefix[:-1]
            pos_right = total_pos - pos_left
            counts_right = n - counts_left
            with np.errstate(invalid="ignore", divide="ignore"):
                p_left = pos_left / counts_left
                p_right = pos_right / counts_right
                gini_left = 2 * p_left * (1 - p_left)
                gini_right = 2 * p_right * (1 - p_right)
                weighted = (counts_left * gini_left + counts_right * gini_right) / n
            weighted = np.where(valid, weighted, np.inf)
            idx = int(np.argmin(weighted))
            if weighted[idx] < best_score - 1e-12:
                best_score = float(weighted[idx])
                best_feature = int(feature)
                best_threshold = float(
                    (sorted_vals[idx] + sorted_vals[idx + 1]) / 2.0
                )
        # Like classic CART, accept the best valid split even when the
        # immediate impurity gain is ~zero (XOR-style concepts only pay off
        # one level deeper); a node with no valid split stays a leaf.
        if best_feature >= 0 and np.isfinite(best_score):
            return best_feature, best_threshold
        return -1, 0.0

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _fill(self, node: _Node, X: np.ndarray, idx: np.ndarray, out: np.ndarray) -> None:
        if node.feature < 0 or node.left is None or node.right is None:
            out[idx] = node.probability
            return
        go_left = X[idx, node.feature] <= node.threshold
        if go_left.any():
            self._fill(node.left, X, idx[go_left], out)
        if (~go_left).any():
            self._fill(node.right, X, idx[~go_left], out)

    def _count_leaves(self, node: _Node) -> int:
        if node.feature < 0 or node.left is None or node.right is None:
            return 1
        return self._count_leaves(node.left) + self._count_leaves(node.right)

    def _depth_of(self, node: _Node) -> int:
        if node.feature < 0 or node.left is None or node.right is None:
            return 0
        return 1 + max(self._depth_of(node.left), self._depth_of(node.right))
