"""CART decision-tree classifier (Gini impurity).

The building block of the DTB weak learner: bagged trees with per-tree
feature subsampling (which makes the bagging ensemble "equivalent to a random
forest", Section V-C). Splits minimise weighted Gini impurity; leaves store
the positive-class fraction, optionally Laplace-smoothed so probabilities are
never exactly 0 or 1.

Trees are grown and stored directly in the packed parallel-array
representation (preorder ``feature`` / ``threshold`` / ``probability`` /
``n_samples`` / ``left`` / ``right`` arrays) that the persistence layer
already used — there is no per-node Python object on any hot path. Two
builders share that format, both *contract-bound to reproduce the original
recursive implementation exactly* (identical packed arrays, identical
predictions, identical RNG consumption — golden-tested against
:mod:`repro.ml._tree_reference`):

* **level-wise** (``max_features=None``): every feature is argsorted once at
  the root and the sorted index arrays are threaded through a breadth-first
  builder that evaluates the Gini scan of *all* nodes of a level in a
  handful of whole-level ``reduceat`` operations. No RNG is consumed, so
  batching across nodes cannot disturb draw order.
* **presorted depth-first** (feature subsampling): the original builder
  draws one candidate-feature subset per node in depth-first preorder, so
  node processing order is pinned. This builder keeps that order (explicit
  stack, no recursion) but replaces the per-node re-sorting and sub-matrix
  copying of the original with index-partitioned views of the root presort.

Prediction is an iterative vectorised descent over the packed arrays (one
numpy step per tree level, no Python recursion per node).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import Classifier

#: Strict-improvement margin of the original split selection, kept verbatim.
_IMPROVEMENT_TOL = 1e-12


@dataclass
class _Node:
    """One tree node; ``feature < 0`` marks a leaf.

    Kept as a compatibility view of the packed representation (see
    :func:`_unflatten_tree`); the classifier itself never builds these.
    """

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    probability: float = 0.5
    n_samples: int = 0


def _flatten_tree(root: _Node) -> dict[str, np.ndarray]:
    """Pack a node tree into parallel arrays (preorder; -1 = no child)."""
    features: list[int] = []
    thresholds: list[float] = []
    probabilities: list[float] = []
    n_samples: list[int] = []
    lefts: list[int] = []
    rights: list[int] = []

    def visit(node: _Node) -> int:
        idx = len(features)
        features.append(node.feature)
        thresholds.append(node.threshold)
        probabilities.append(node.probability)
        n_samples.append(node.n_samples)
        lefts.append(-1)
        rights.append(-1)
        if node.feature >= 0 and node.left is not None and node.right is not None:
            lefts[idx] = visit(node.left)
            rights[idx] = visit(node.right)
        return idx

    visit(root)
    return {
        "feature": np.asarray(features, dtype=np.int64),
        "threshold": np.asarray(thresholds, dtype=float),
        "probability": np.asarray(probabilities, dtype=float),
        "n_samples": np.asarray(n_samples, dtype=np.int64),
        "left": np.asarray(lefts, dtype=np.int64),
        "right": np.asarray(rights, dtype=np.int64),
    }


def _unflatten_tree(packed: dict[str, np.ndarray]) -> _Node:
    """Rebuild a node tree from :func:`_flatten_tree` arrays."""

    def build(idx: int) -> _Node:
        node = _Node(
            feature=int(packed["feature"][idx]),
            threshold=float(packed["threshold"][idx]),
            probability=float(packed["probability"][idx]),
            n_samples=int(packed["n_samples"][idx]),
        )
        left = int(packed["left"][idx])
        right = int(packed["right"][idx])
        if left >= 0 and right >= 0:
            node.left = build(left)
            node.right = build(right)
        return node

    return build(0)


def _pack(
    features: list[int] | np.ndarray,
    thresholds: list[float] | np.ndarray,
    probabilities: list[float] | np.ndarray,
    n_samples: list[int] | np.ndarray,
    lefts: list[int] | np.ndarray,
    rights: list[int] | np.ndarray,
) -> dict[str, np.ndarray]:
    return {
        "feature": np.asarray(features, dtype=np.int64),
        "threshold": np.asarray(thresholds, dtype=float),
        "probability": np.asarray(probabilities, dtype=float),
        "n_samples": np.asarray(n_samples, dtype=np.int64),
        "left": np.asarray(lefts, dtype=np.int64),
        "right": np.asarray(rights, dtype=np.int64),
    }


class DecisionTreeClassifier(Classifier):
    """Binary CART tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity or minimum leaf size.
    min_samples_split:
        Minimum samples required to consider splitting a node.
    min_samples_leaf:
        Minimum samples that each child of a split must retain.
    max_features:
        Number of features examined per split; ``None`` = all, ``"sqrt"`` =
        square root of the feature count (random-forest style).
    laplace:
        Additive smoothing for leaf probabilities: ``(pos + a) / (n + 2a)``.
    rng:
        Randomness for feature subsampling.
    """

    #: Tree growth is pure-Python/numpy bound, so the process backend is the
    #: profitable way to parallelise fits of tree-based ensembles. The
    #: per-level prediction walk is the same flavour of work, so serving
    #: fan-outs route tree members to processes too.
    fit_backend_hint = "process"
    predict_backend_hint = "process"

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        laplace: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ConfigurationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        if laplace < 0:
            raise ConfigurationError(f"laplace must be >= 0, got {laplace}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.laplace = laplace
        self.rng = rng or np.random.default_rng()
        self._tree: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = self._check_fit_input(X, y)
        if self.max_features is None:
            self._tree = _grow_levelwise(self, X, y)
        else:
            self._tree = _grow_depth_first(self, X, y)
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._check_predict_input(X)
        assert self._tree is not None
        tree = self._tree
        feature = tree["feature"]
        if feature[0] < 0:  # lone-root tree
            return np.full(X.shape[0], tree["probability"][0])
        threshold = tree["threshold"]
        left = tree["left"]
        right = tree["right"]
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            f = feature[node]
            internal = f >= 0
            if not internal.any():
                break
            idx = np.nonzero(internal)[0]
            cur = node[idx]
            go_left = X[idx, f[idx]] <= threshold[cur]
            node[idx] = np.where(go_left, left[cur], right[cur])
        return tree["probability"][node]

    @property
    def tree_arrays(self) -> dict[str, np.ndarray]:
        """The packed preorder tree arrays (the native fitted representation)."""
        from repro.exceptions import NotFittedError

        if self._tree is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        return self._tree

    def to_manifest(self, store, prefix: str) -> dict:
        from repro.exceptions import NotFittedError

        if self._tree is None:
            raise NotFittedError("cannot persist an unfitted DecisionTreeClassifier")
        return {
            "type": "DecisionTreeClassifier",
            "config": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "laplace": self.laplace,
            },
            "n_features": self._n_features,
            "arrays": {
                name: store.put(f"{prefix}/{name}", array)
                for name, array in self._tree.items()
            },
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "DecisionTreeClassifier":
        from repro.runtime.persistence import get_array

        model = cls(**node["config"])
        packed = {
            name: get_array(arrays, key) for name, key in node["arrays"].items()
        }
        model._tree = _pack(
            packed["feature"], packed["threshold"], packed["probability"],
            packed["n_samples"], packed["left"], packed["right"],
        )
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes in the fitted tree."""
        if self._tree is None:
            return 0
        return int((self._tree["feature"] < 0).sum())

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (a lone root has depth 0)."""
        if self._tree is None:
            return 0
        left = self._tree["left"]
        right = self._tree["right"]
        # Preorder guarantees children come after parents, so one forward
        # sweep propagates depths.
        depths = np.zeros(left.size, dtype=np.int64)
        for i in range(left.size):
            if left[i] >= 0:
                depths[left[i]] = depths[i] + 1
                depths[right[i]] = depths[i] + 1
        return int(depths.max())

    # ------------------------------------------------------------------
    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(n_features)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(n_features)))
        else:
            k = int(self.max_features)
            if k < 1:
                raise ConfigurationError(f"max_features must be >= 1, got {k}")
            k = min(k, n_features)
        return self.rng.choice(n_features, size=k, replace=False)


# ----------------------------------------------------------------------
# Presorted depth-first builder (feature subsampling)
# ----------------------------------------------------------------------
def _grow_depth_first(
    tree: DecisionTreeClassifier, X: np.ndarray, y: np.ndarray
) -> dict[str, np.ndarray]:
    """Grow a packed tree node by node in depth-first preorder.

    Each feature is argsorted once at the root; a node holds the ``(k, m)``
    matrix of its sample indices sorted per feature, and a split partitions
    those index rows with one boolean mask instead of re-sorting. Preorder
    processing keeps the per-node ``_candidate_features`` draws in exactly
    the order the recursive builder made them, and writes nodes into the
    packed arrays in their final (preorder) layout.
    """
    n, n_features = X.shape
    min_leaf = tree.min_samples_leaf
    min_split = tree.min_samples_split
    max_depth = tree.max_depth
    a = tree.laplace
    all_features = tree.max_features is None

    sort_idx = np.ascontiguousarray(np.argsort(X, axis=0, kind="mergesort").T)
    y = np.ascontiguousarray(y, dtype=np.int64)

    counts = np.arange(1, n + 1)
    feat_arange = np.arange(n_features)
    scratch = [np.empty((n_features, max(n - 1, 1))) for _ in range(4)]
    buf = np.zeros(n, dtype=bool)

    features: list[int] = []
    thresholds: list[float] = []
    probabilities: list[float] = []
    n_samples: list[int] = []
    lefts: list[int] = []
    rights: list[int] = []

    # Stack of (sorted-index matrix, positive count, depth, parent, is_left);
    # pushing right before left yields preorder.
    stack: list[tuple[np.ndarray, int, int, int, bool]] = [
        (sort_idx, int(y.sum()), 0, -1, False)
    ]
    old_err = np.seterr(invalid="ignore", divide="ignore")
    try:
        while stack:
            idx_node, n_pos, depth, parent, is_left = stack.pop()
            m = idx_node.shape[1]
            node_id = len(features)
            if parent >= 0:
                (lefts if is_left else rights)[parent] = node_id
            features.append(-1)
            thresholds.append(0.0)
            probabilities.append(float((n_pos + a) / (m + 2 * a)))
            n_samples.append(m)
            lefts.append(-1)
            rights.append(-1)
            if (
                m < min_split
                or (max_depth is not None and depth >= max_depth)
                or n_pos == 0
                or n_pos == m
            ):
                continue
            cand = tree._candidate_features(n_features)
            # Valid split positions j satisfy min_leaf <= j+1 <= m - min_leaf.
            lo, hi = min_leaf - 1, m - min_leaf
            if hi <= lo:
                continue
            kc = len(cand)
            rows = idx_node if all_features else idx_node[cand]
            svals = X[rows, cand[:, None]]
            sy = y[rows]
            pos_prefix = np.cumsum(sy, axis=1)
            width = hi - lo
            counts_left = counts[lo:hi]
            counts_right = m - counts_left
            pos_left = pos_prefix[:, lo:hi]
            b0, b1, b2, b3 = (s[:kc, :width] for s in scratch)
            np.subtract(n_pos, pos_left, out=b0)       # pos_right
            np.divide(pos_left, counts_left, out=b1)   # p_left
            np.divide(b0, counts_right, out=b2)        # p_right
            np.subtract(1.0, b1, out=b0)
            np.multiply(2.0, b1, out=b3)
            np.multiply(b3, b0, out=b1)                # gini_left
            np.subtract(1.0, b2, out=b0)
            np.multiply(2.0, b2, out=b3)
            np.multiply(b3, b0, out=b2)                # gini_right
            np.multiply(counts_left, b1, out=b0)
            np.multiply(counts_right, b2, out=b3)
            np.add(b0, b3, out=b0)
            weighted = np.divide(b0, m, out=b0)
            weighted[svals[:, lo + 1 : hi + 1] == svals[:, lo:hi]] = np.inf
            split_pos = np.argmin(weighted, axis=1)
            scores = weighted[feat_arange[:kc], split_pos].tolist()
            best_r = -1
            best_score = np.inf
            for r in range(kc):
                if scores[r] < best_score - _IMPROVEMENT_TOL:
                    best_score = scores[r]
                    best_r = r
            if best_r < 0:
                continue
            j = int(split_pos[best_r]) + lo
            thr = float((svals[best_r, j] + svals[best_r, j + 1]) / 2.0)
            n_left = int(np.searchsorted(svals[best_r], thr, side="right"))
            if n_left == 0 or n_left == m:
                # Midpoint rounded onto a boundary value: no sample separation
                # is possible, so the node stays a leaf.
                continue
            left_ids = rows[best_r, :n_left]
            buf[left_ids] = True
            go_left = buf[idx_node]
            left_idx = idx_node[go_left].reshape(n_features, n_left)
            right_idx = idx_node[~go_left].reshape(n_features, m - n_left)
            buf[left_ids] = False
            features[node_id] = int(cand[best_r])
            thresholds[node_id] = thr
            pos_l = int(pos_prefix[best_r, n_left - 1])
            stack.append((right_idx, n_pos - pos_l, depth + 1, node_id, False))
            stack.append((left_idx, pos_l, depth + 1, node_id, True))
    finally:
        np.seterr(**old_err)
    return _pack(features, thresholds, probabilities, n_samples, lefts, rights)


# ----------------------------------------------------------------------
# Level-wise builder (all features; no RNG consumption)
# ----------------------------------------------------------------------
def _grow_levelwise(
    tree: DecisionTreeClassifier, X: np.ndarray, y: np.ndarray
) -> dict[str, np.ndarray]:
    """Grow a packed tree one whole level at a time.

    All nodes of a level live as contiguous segments of per-feature sorted
    index arrays, and *all features scan at once*: the Gini sweep, the
    per-segment argmin, and the stable partition each run as a handful of
    ``(n_features, n_active)`` array operations (``reduceat`` over segment
    starts along axis 1). Because ``max_features=None`` consumes no
    randomness, batching across nodes is free — the resulting tree is
    identical to depth-first recursive growth, float for float. Nodes are
    laid out breadth-first during growth and renumbered to the canonical
    preorder packing at the end.

    Indices and counts travel in 32-bit lanes (every value is < n, integer
    arithmetic stays exact, and converting either width to float64 yields
    the same double), which halves the memory traffic of the non-float
    passes.
    """
    n, n_features = X.shape
    min_leaf = tree.min_samples_leaf
    min_split = tree.min_samples_split
    max_depth = tree.max_depth
    a = tree.laplace

    order = np.ascontiguousarray(
        np.argsort(X, axis=0, kind="mergesort").T, dtype=np.int32
    )
    XT = np.ascontiguousarray(X.T)  # contiguous per-feature columns to gather
    y32 = np.ascontiguousarray(y, dtype=np.int32)
    arange_n = np.arange(n, dtype=np.int32)
    row_idx = np.arange(n_features)[:, None]
    buf = np.zeros(n, dtype=bool)
    # Preallocated (n_features, n) scratch, sliced to the active width:
    # float lanes for the Gini sweep, int lanes for prefix counts, bool
    # lanes for the masks.
    fb = [np.empty((n_features, n)) for _ in range(3)]
    ib = [np.empty((n_features, n), dtype=np.int32) for _ in range(2)]
    bb = [np.empty((n_features, n), dtype=bool)]

    level_feat: list[np.ndarray] = []
    level_thr: list[np.ndarray] = []
    level_prob: list[np.ndarray] = []
    level_nsamp: list[np.ndarray] = []
    level_left: list[np.ndarray] = []
    level_right: list[np.ndarray] = []

    starts = np.array([0, n], dtype=np.int32)
    n_pos_seg = np.array([int(y.sum())], dtype=np.int32)
    node_base = 0
    depth = 0

    old_err = np.seterr(invalid="ignore", divide="ignore")
    try:
        while starts.size > 1:
            m_seg = np.diff(starts)
            n_level = m_seg.size

            feat_lvl = np.full(n_level, -1, dtype=np.int64)
            thr_lvl = np.zeros(n_level)
            prob_lvl = (n_pos_seg + a) / (m_seg + 2 * a)
            left_lvl = np.full(n_level, -1, dtype=np.int64)
            right_lvl = np.full(n_level, -1, dtype=np.int64)

            stop = (m_seg < min_split) | (n_pos_seg == 0) | (n_pos_seg == m_seg)
            if max_depth is not None and depth >= max_depth:
                stop[:] = True
            # Nodes narrower than two leaves have no valid split position.
            splittable = ~stop & (m_seg >= 2 * min_leaf)

            if not splittable.any():
                level_feat.append(feat_lvl)
                level_thr.append(thr_lvl)
                level_prob.append(prob_lvl)
                level_nsamp.append(m_seg)
                level_left.append(left_lvl)
                level_right.append(right_lvl)
                break

            # Compact the sorted index arrays down to splittable segments.
            keep_pos = np.repeat(splittable, m_seg)
            if not splittable.all():
                order = np.ascontiguousarray(order[:, keep_pos])
            sp_idx = np.nonzero(splittable)[0]
            m2 = m_seg[sp_idx]
            npos2 = n_pos_seg[sp_idx]
            starts2 = np.concatenate([[0], np.cumsum(m2)]).astype(np.int32)
            seg0 = starts2[:-1]
            n_active = int(starts2[-1])
            n_seg = m2.size

            # Per-position helpers, shared by every feature row.
            seg_id_pos = np.repeat(np.arange(n_seg, dtype=np.int32), m2)
            pos_in_seg = arange_n[:n_active] - np.repeat(seg0, m2)
            counts_left = pos_in_seg + 1
            m_pos = np.repeat(m2, m2)
            counts_right = m_pos - counts_left
            npos_pos = np.repeat(npos2, m2)
            not_window = (counts_left < min_leaf) | (counts_right < min_leaf)

            f0, f1, f2 = (b[:, :n_active] for b in fb)
            i0, i1 = (b[:, :n_active] for b in ib)
            b0 = bb[0][:, :n_active]

            # --- Gini sweep, all features at once -------------------------
            vals = XT[row_idx, order]
            sy = np.take(y32, order, out=i0)
            csum = np.cumsum(sy, axis=1, out=i1)
            seg_base = csum[:, seg0] - sy[:, seg0]
            pos_left = np.subtract(
                csum, np.take(seg_base, seg_id_pos, axis=1, out=i0), out=i1
            )
            p_left = np.divide(pos_left, counts_left, out=f0)
            np.subtract(npos_pos, pos_left, out=i0)
            p_right = np.divide(i0, counts_right, out=f1)
            # gini = (2 * p) * (1 - p), association kept verbatim.
            np.multiply(2.0, p_left, out=f2)
            np.subtract(1.0, p_left, out=f0)
            gini_left = np.multiply(f2, f0, out=f0)
            np.multiply(2.0, p_right, out=f2)
            np.subtract(1.0, p_right, out=f1)
            gini_right = np.multiply(f2, f1, out=f1)
            np.multiply(counts_left, gini_left, out=f0)
            np.multiply(counts_right, gini_right, out=f1)
            np.add(f0, f1, out=f0)
            weighted = np.divide(f0, m_pos, out=f0)
            # invalid = tie-with-next OR outside the leaf-size window.
            np.equal(vals[:, 1:], vals[:, :-1], out=b0[:, : n_active - 1])
            b0[:, n_active - 1] = True
            weighted[np.logical_or(b0, not_window, out=b0)] = np.inf
            seg_min = np.minimum.reduceat(weighted, seg0, axis=1)
            at_min = np.equal(
                weighted, np.take(seg_min, seg_id_pos, axis=1, out=f1), out=b0
            )
            first = np.minimum.reduceat(
                np.where(at_min, arange_n[:n_active], np.int32(n_active)),
                seg0,
                axis=1,
            )

            # --- Split selection: features in index order, strict
            # improvement, exactly like the sequential builder -------------
            best_score = np.full(n_seg, np.inf)
            best_feat = np.full(n_seg, -1, dtype=np.int64)
            best_first = np.zeros(n_seg, dtype=np.int32)
            for f in range(n_features):
                improve = seg_min[f] < best_score - _IMPROVEMENT_TOL
                if improve.any():
                    best_score[improve] = seg_min[f][improve]
                    best_feat[improve] = f
                    best_first[improve] = first[f][improve]

            # Thresholds, left sizes, and left-positive counts only need
            # computing for the features that actually won a segment.
            best_thr = np.zeros(n_seg)
            best_nl = np.zeros(n_seg, dtype=np.int32)
            best_posl = np.zeros(n_seg, dtype=np.int32)
            won = np.isfinite(best_score)
            for f in np.unique(best_feat[won]).tolist():
                segs = won & (best_feat == f)
                vrow = vals[f]
                sel_first = best_first[segs]
                thr_f = (vrow[sel_first] + vrow[sel_first + 1]) / 2.0
                best_thr[segs] = thr_f
                thr_pos = np.zeros(n_seg)
                thr_pos[segs] = thr_f
                below = np.less_equal(
                    vrow, np.take(thr_pos, seg_id_pos), out=bb[0][0, :n_active]
                )
                nl_f = np.add.reduceat(below, seg0, dtype=np.int32)
                best_nl[segs] = nl_f[segs]
                gather = np.maximum(seg0 + nl_f - 1, seg0)
                # pos_left is the within-segment positive prefix, so indexing
                # it at the last left-going position yields the left child's
                # positive count directly.
                posl_f = pos_left[f, gather]
                best_posl[segs] = posl_f[segs]

            split = won & (best_nl > 0) & (best_nl < m2)

            sp_nodes = sp_idx[split]
            n_split = sp_nodes.size
            feat_lvl[sp_nodes] = best_feat[split]
            thr_lvl[sp_nodes] = best_thr[split]
            pair = np.arange(n_split, dtype=np.int64)
            left_lvl[sp_nodes] = node_base + n_level + 2 * pair
            right_lvl[sp_nodes] = node_base + n_level + 2 * pair + 1

            level_feat.append(feat_lvl)
            level_thr.append(thr_lvl)
            level_prob.append(prob_lvl)
            level_nsamp.append(m_seg)
            level_left.append(left_lvl)
            level_right.append(right_lvl)

            if n_split == 0:
                break

            # Mark the left-going samples: the first n_left entries of each
            # winning feature's sorted segment (values <= threshold form a
            # prefix of the sort).
            split_segs = np.nonzero(split)[0]
            for s in split_segs.tolist():
                f_win = int(best_feat[s])
                start = int(seg0[s])
                buf[order[f_win, start : start + int(best_nl[s])]] = True

            nl_split = best_nl[split]
            nr_split = m2[split] - nl_split
            child_sizes = np.stack([nl_split, nr_split], axis=1).ravel()
            new_starts = np.concatenate([[0], np.cumsum(child_sizes)]).astype(
                np.int32
            )
            n_new = int(new_starts[-1])

            lstart_seg = np.zeros(n_seg, dtype=np.int32)
            rstart_seg = np.zeros(n_seg, dtype=np.int32)
            lstart_seg[split_segs] = new_starts[:-1][0::2]
            rstart_seg[split_segs] = new_starts[:-1][1::2]
            lstart_pos = np.take(lstart_seg, seg_id_pos)
            rstart_pos = np.take(rstart_seg, seg_id_pos)
            keep = np.repeat(split, m2)

            # --- Stable partition of every feature row, one 2-D pass ------
            go_left = np.take(buf, order, out=b0)
            cleft = np.cumsum(go_left, axis=1, out=i1)
            seg_cbase = cleft[:, seg0] - go_left[:, seg0]
            # Count of left-going samples up to (and including) each
            # position within its segment.
            lrank = np.subtract(
                cleft, np.take(seg_cbase, seg_id_pos, axis=1, out=i0), out=i1
            )
            left_dest = np.add(lstart_pos, lrank, out=i0)
            np.subtract(left_dest, 1, out=left_dest)
            right_dest = np.subtract(pos_in_seg, lrank, out=lrank)
            np.add(rstart_pos, right_dest, out=right_dest)
            new_pos = np.where(go_left, left_dest, right_dest)
            new_order = np.empty((n_features, n_new), dtype=np.int32)
            new_order[row_idx, new_pos[:, keep]] = order[:, keep]
            for s in split_segs.tolist():
                f_win = int(best_feat[s])
                start = int(seg0[s])
                buf[order[f_win, start : start + int(best_nl[s])]] = False

            order = new_order
            starts = new_starts
            posl_split = best_posl[split]
            n_pos_seg = np.stack(
                [posl_split, npos2[split] - posl_split], axis=1
            ).ravel()
            node_base += n_level
            depth += 1
    finally:
        np.seterr(**old_err)

    bfs = _pack(
        np.concatenate(level_feat),
        np.concatenate(level_thr),
        np.concatenate(level_prob),
        np.concatenate(level_nsamp),
        np.concatenate(level_left),
        np.concatenate(level_right),
    )
    return _bfs_to_preorder(bfs)


def _bfs_to_preorder(packed: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Renumber a breadth-first packed tree into the canonical preorder."""
    left = packed["left"]
    right = packed["right"]
    n_nodes = left.size
    visit = np.empty(n_nodes, dtype=np.int64)   # preorder sequence of BFS ids
    new_id = np.empty(n_nodes, dtype=np.int64)  # BFS id -> preorder id
    stack = [0]
    cursor = 0
    left_list = left.tolist()
    right_list = right.tolist()
    while stack:
        node = stack.pop()
        visit[cursor] = node
        new_id[node] = cursor
        cursor += 1
        if right_list[node] >= 0:
            stack.append(right_list[node])
        if left_list[node] >= 0:
            stack.append(left_list[node])
    old_left = left[visit]
    old_right = right[visit]
    return {
        "feature": packed["feature"][visit],
        "threshold": packed["threshold"][visit],
        "probability": packed["probability"][visit],
        "n_samples": packed["n_samples"][visit],
        "left": np.where(old_left >= 0, new_id[np.maximum(old_left, 0)], -1),
        "right": np.where(old_right >= 0, new_id[np.maximum(old_right, 0)], -1),
    }
