"""Logistic regression and positive-unlabeled (PU) weighted variants.

Section II-c of the paper situates its data problem in the PU-learning
literature: "Introduced in [Lee & Liu 2003], PU learning focuses on
unreliable negative labels, taking a semi-supervised approach to binary
classification." This module provides:

* :class:`LogisticRegression` — L2-regularised MLE via Newton's method with
  optional per-sample weights (also the M-step workhorse of the CAPTURE
  baseline);
* :class:`PUWeightedLogisticRegression` — the weighted-logistic-regression
  PU scheme: positives keep weight 1, "negatives" (really unlabeled) are
  down-weighted by how unreliable they are, which in the poaching domain is
  a decreasing function of patrol effort.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.ml.base import Classifier
from repro.ml.calibration import _stable_sigmoid
from repro.ml.scaling import StandardScaler


class LogisticRegression(Classifier):
    """L2-regularised logistic regression fit by damped Newton iterations.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (not the intercept).
    max_iter:
        Newton iteration cap.
    tol:
        Stop when the gradient's infinity norm falls below this.
    """

    def __init__(self, l2: float = 1.0, max_iter: int = 100, tol: float = 1e-8):
        super().__init__()
        if l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {l2}")
        if max_iter < 1:
            raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler = StandardScaler()

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        """Fit on features and {0,1} labels, optionally weighted per sample."""
        X, y = self._check_fit_input(X, y)
        if sample_weight is None:
            weights = np.ones(y.size)
        else:
            weights = np.asarray(sample_weight, dtype=float)
            if weights.shape != (y.size,):
                raise DataError(
                    f"sample_weight must have shape ({y.size},), got {weights.shape}"
                )
            if (weights < 0).any():
                raise DataError("sample weights cannot be negative")
            if weights.sum() <= 0:
                raise DataError("sample weights sum to zero")
        Xs = self._scaler.fit_transform(X)
        Xa = np.hstack([Xs, np.ones((Xs.shape[0], 1))])
        n, d = Xa.shape
        beta = np.zeros(d)
        ridge = np.full(d, self.l2)
        ridge[-1] = 0.0  # do not penalise the intercept
        for _ in range(self.max_iter):
            p = _stable_sigmoid(Xa @ beta)
            grad = Xa.T @ (weights * (p - y)) + ridge * beta
            if np.abs(grad).max() < self.tol:
                break
            w_irls = np.maximum(weights * p * (1 - p), 1e-10)
            hessian = (Xa * w_irls[:, None]).T @ Xa + np.diag(ridge + 1e-10)
            step = np.linalg.solve(hessian, grad)
            # Damp oversized Newton steps for stability on separable data.
            norm = np.abs(step).max()
            if norm > 10.0:
                step *= 10.0 / norm
            beta -= step
        self.coef_ = beta[:-1]
        self.intercept_ = float(beta[-1])
        self._mark_fitted()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Log-odds of the positive class.

        einsum keeps the per-row reduction order independent of the row
        count, so tiled serving is bit-identical to a single pass.
        """
        X = self._check_predict_input(X)
        assert self.coef_ is not None
        Xs = self._scaler.transform(X)
        return np.einsum("ij,j->i", Xs, self.coef_) + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _stable_sigmoid(self.decision_function(X))

    # ------------------------------------------------------------------
    def to_manifest(self, store, prefix: str) -> dict:
        from repro.exceptions import NotFittedError
        from repro.runtime.persistence import encode_standard_scaler

        if self.coef_ is None:
            raise NotFittedError("cannot persist an unfitted LogisticRegression")
        return {
            "type": "LogisticRegression",
            "config": {"l2": self.l2, "max_iter": self.max_iter, "tol": self.tol},
            "n_features": self._n_features,
            "intercept": self.intercept_,
            "scaler": encode_standard_scaler(self._scaler, store, prefix),
            "arrays": {"coef": store.put(f"{prefix}/coef", self.coef_)},
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "LogisticRegression":
        from repro.runtime.persistence import decode_standard_scaler, get_array

        model = cls(**node["config"])
        model.coef_ = get_array(arrays, node["arrays"]["coef"]).astype(float)
        model.intercept_ = float(node["intercept"])
        model._scaler = decode_standard_scaler(node["scaler"], arrays)
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model


class PUWeightedLogisticRegression(Classifier):
    """Weighted logistic regression for positive-unlabeled data.

    Positive labels are trusted (weight 1). Each "negative" is really an
    unlabeled example; it enters with weight equal to its estimated
    reliability. In the poaching domain, a negative recorded under heavy
    patrol effort is nearly certainly a true negative, while one under
    little effort is almost uninformative — so the reliability is the
    detection curve ``1 - e^{-k c}`` evaluated at the sample's patrol effort
    (the same structural assumption iWare-E discretises into thresholds).

    Parameters
    ----------
    reliability_rate:
        Steepness ``k`` of the reliability curve.
    l2, max_iter:
        Passed to the underlying :class:`LogisticRegression`.
    """

    def __init__(self, reliability_rate: float = 0.5, l2: float = 1.0,
                 max_iter: int = 100):
        super().__init__()
        if reliability_rate <= 0:
            raise ConfigurationError(
                f"reliability_rate must be positive, got {reliability_rate}"
            )
        self.reliability_rate = reliability_rate
        self._model = LogisticRegression(l2=l2, max_iter=max_iter)

    def fit(
        self, X: np.ndarray, y: np.ndarray, effort: np.ndarray | None = None
    ) -> "PUWeightedLogisticRegression":
        """Fit with negative-sample weights from patrol effort.

        Parameters
        ----------
        effort:
            ``(n,)`` patrol effort per sample; ``None`` assumes the last
            feature column is the effort proxy (the dataset's
            ``prev_patrol_effort`` convention).
        """
        X, y = self._check_fit_input(X, y)
        if effort is None:
            effort = X[:, -1]
        effort = np.asarray(effort, dtype=float)
        if effort.shape != (y.size,):
            raise DataError(
                f"effort must have shape ({y.size},), got {effort.shape}"
            )
        if (effort < 0).any():
            raise DataError("patrol effort cannot be negative")
        reliability = 1.0 - np.exp(-self.reliability_rate * effort)
        weights = np.where(y == 1, 1.0, np.maximum(reliability, 1e-3))
        self._model.fit(X, y, sample_weight=weights)
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._check_predict_input(X)
        return self._model.predict_proba(X)

    # ------------------------------------------------------------------
    def to_manifest(self, store, prefix: str) -> dict:
        from repro.exceptions import NotFittedError

        if not self._fitted:
            raise NotFittedError(
                "cannot persist an unfitted PUWeightedLogisticRegression"
            )
        return {
            "type": "PUWeightedLogisticRegression",
            "reliability_rate": self.reliability_rate,
            "n_features": self._n_features,
            "model": self._model.to_manifest(store, f"{prefix}/model"),
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "PUWeightedLogisticRegression":
        from repro.runtime.persistence import decode_node

        model = cls(reliability_rate=node["reliability_rate"])
        model._model = decode_node(node["model"], arrays)
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model
