"""Shared classifier interface.

Every model in :mod:`repro.ml` is a binary probabilistic classifier with the
same contract: ``fit(X, y)`` with ``y`` in {0, 1}, ``predict_proba(X)``
returning the probability of the positive class, and (for models that can)
``predict_variance(X)`` returning a per-point uncertainty score. The iWare-E
ensemble in :mod:`repro.core` composes models only through this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import DataError, NotFittedError


def check_binary_labels(y: np.ndarray) -> np.ndarray:
    """Validate and coerce a {0, 1} label vector.

    Raises
    ------
    DataError
        If labels are not a 1-D array with values in {0, 1}, or contain only
        one class (a classifier cannot be fit without both classes).
    """
    y = np.asarray(y)
    if y.ndim != 1:
        raise DataError(f"labels must be 1-D, got shape {y.shape}")
    values = np.unique(y)
    if not np.isin(values, (0, 1)).all():
        raise DataError(f"labels must be in {{0, 1}}, got values {values}")
    return y.astype(np.int64)


def check_features(X: np.ndarray) -> np.ndarray:
    """Validate a 2-D finite feature matrix."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise DataError(f"features must be 2-D, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise DataError("feature matrix contains non-finite values")
    return X


class DeferredFit:
    """Phase 2 of a two-phase fit: a picklable "fit this model now" task.

    Instances are zero-argument callables returned by
    :meth:`Classifier.fit_deferred`. Because they are plain objects (not
    closures) they can cross a process boundary whenever the model itself
    pickles, which is what lets :func:`repro.runtime.parallel.run_deferred`
    fan pure-Python fits out to a process pool. The ``backend_hint``
    attribute advertises which pool the fit profits from.
    """

    def __init__(self, model: "Classifier", X: np.ndarray, y: np.ndarray):
        self.model = model
        self.X = X
        self.y = y

    @property
    def backend_hint(self) -> str:
        return self.model.fit_backend_hint

    def __call__(self) -> "Classifier":
        return self.model.fit(self.X, self.y)


class PrefittedTask:
    """A phase-2 task whose model is already fitted (degenerate fallback).

    A no-op task has no GIL-bound work, so it abstains from the backend
    vote (``"any"``) rather than dragging a tree/SVM fan-out back to
    threads.
    """

    backend_hint = "any"

    def __init__(self, model: "Classifier"):
        self.model = model

    def __call__(self) -> "Classifier":
        return self.model


class Classifier(ABC):
    """Abstract binary probabilistic classifier."""

    #: Whether :meth:`predict_variance` returns a model-intrinsic uncertainty
    #: (Gaussian processes) rather than a surrogate or nothing.
    supports_variance: bool = False

    #: Which pool backend a fit of this model profits from: ``"thread"`` for
    #: models whose heavy lifting releases the GIL in native code (GP
    #: Cholesky, BLAS products), ``"process"`` for pure-Python/numpy-dispatch
    #: work (tree growth, SGD epochs) that threads would serialise.
    fit_backend_hint: str = "thread"

    #: Same vote for the *prediction* fan-out (:func:`repro.runtime.parallel.
    #: predict_map`). Most predictors reduce to BLAS/ufunc sweeps that
    #: release the GIL, so the default is ``"thread"``; per-level tree
    #: traversal overrides with ``"process"``.
    predict_backend_hint: str = "thread"

    def __init__(self) -> None:
        self._fitted = False
        self._n_features: int | None = None

    # ------------------------------------------------------------------
    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Fit on features ``X`` (n, k) and labels ``y`` in {0, 1}."""

    def fit_deferred(self, X: np.ndarray, y: np.ndarray):
        """Split a fit into draw-shared-randomness-now / heavy-work-later.

        Returns a zero-argument callable task that completes the fit and
        returns the fitted model. Ensembles that fan member fits out to a
        pool call this serially first, so every draw from a generator shared
        between models (e.g. a factory's master seed stream) happens in the
        same order as a fully serial fit — which is what makes parallel
        fitting bit-identical to serial. The default defers everything:
        models whose randomness is entirely their own need no split. The
        returned :class:`DeferredFit` is picklable whenever the model is, so
        it can run in a process pool.
        """
        return DeferredFit(self, X, y)

    @abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""

    def predict_variance(self, X: np.ndarray) -> np.ndarray:
        """Per-point uncertainty score; zero unless a subclass overrides."""
        X = self._check_predict_input(X)
        return np.zeros(X.shape[0])

    def prediction_stats(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(probability, variance)`` for each row, in one model pass.

        Equal to ``(predict_proba(X), predict_variance(X))`` — but models
        whose probability and variance share expensive intermediates (GP
        latent moments, bagging member sweeps) override this to compute both
        from a single pass. The batched serving path is built on it.
        """
        return self.predict_proba(X), self.predict_variance(X)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard {0, 1} predictions at a probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    # ------------------------------------------------------------------
    # Persistence (npz + json manifest; see repro.runtime.persistence)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist this fitted model to a directory."""
        from repro.runtime.persistence import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path, verify: bool = True) -> "Classifier":
        """Load a model of this type saved by :meth:`save`.

        ``verify`` controls checksum verification of the saved arrays (see
        :func:`repro.runtime.persistence.load_model`); on by default.
        """
        from repro.runtime.persistence import load_model

        return load_model(path, expected_type=cls, verify=verify)

    def to_manifest(self, store, prefix: str) -> dict:
        """Manifest node for this model; subclasses must override to persist."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support persistence"
        )

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "Classifier":
        """Rebuild a model from its manifest node; overridden with save support."""
        raise NotImplementedError(f"{cls.__name__} does not support persistence")

    # ------------------------------------------------------------------
    # Fit-state plumbing shared by subclasses
    # ------------------------------------------------------------------
    def _check_fit_input(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = check_features(X)
        y = check_binary_labels(y)
        if X.shape[0] != y.shape[0]:
            raise DataError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
            )
        if X.shape[0] == 0:
            raise DataError("cannot fit on an empty dataset")
        self._n_features = X.shape[1]
        return X, y

    def _mark_fitted(self) -> None:
        self._fitted = True

    def _check_predict_input(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        X = check_features(X)
        if self._n_features is not None and X.shape[1] != self._n_features:
            raise DataError(
                f"model was fit with {self._n_features} features, "
                f"got {X.shape[1]}"
            )
        return X


class ConstantClassifier(Classifier):
    """Predicts a constant probability; the degenerate one-class fallback.

    When an effort-threshold filter leaves a training subset with a single
    class (common at extreme imbalance), ensembles fall back to this model so
    the pipeline never crashes on real-world-shaped data.
    """

    #: Fitting (or serving) a constant is trivial — abstain from the backend
    #: votes so a single-class fallback does not drag a tree ensemble's
    #: fan-out back to threads.
    fit_backend_hint = "any"
    predict_backend_hint = "any"

    def __init__(self, probability: float = 0.5):
        super().__init__()
        self.probability = float(probability)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ConstantClassifier":
        X = check_features(X)
        y = np.asarray(y)
        if y.size:
            self.probability = float(np.mean(y))
        self._n_features = X.shape[1]
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = self._check_predict_input(X)
        return np.full(X.shape[0], self.probability)

    def to_manifest(self, store, prefix: str) -> dict:
        if not self._fitted:
            raise NotFittedError("cannot persist an unfitted ConstantClassifier")
        return {
            "type": "ConstantClassifier",
            "probability": self.probability,
            "n_features": self._n_features,
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "ConstantClassifier":
        model = cls(probability=node["probability"])
        model._n_features = node["n_features"]
        model._mark_fitted()
        return model
