"""Per-function control-flow graphs over the stdlib ``ast``.

:func:`build_cfg` lowers one ``FunctionDef`` into basic blocks connected
by *normal* and *exceptional* edges. The design choices, in order of
load-bearing-ness for the flow rules (RP007-RP011):

- **Blocks hold simple statements plus markers.** Compound statements
  (``if``/``while``/``for``/``try``/``with``) are decomposed into edges;
  their condition/iterable expressions are kept as :class:`CondTest`
  markers so analyses still see the calls inside them. ``with`` items
  become :class:`WithEnter`/:class:`WithExit` markers on every path that
  enters or leaves the body — including the exceptional one, because
  ``__exit__`` runs on exceptions too. That is what makes a lock-set
  analysis sound for ``with self._lock:`` regions.
- **Exception flow is statement-precise without block splitting.** Every
  statement is conservatively may-raise. Rather than splitting a block
  after each statement, the dataflow engine (:mod:`repro.analysis.dataflow`)
  computes a block's exceptional out-state as the join of the states
  *before* each statement, so "acquired then raised before release" is
  visible while blocks stay readable.
- **``finally`` bodies are built once and shared** (merged-finally
  modelling): the finally subgraph gains out-edges to every continuation
  that routes through it (fallthrough, exception propagation, ``return``
  unwinding). This over-approximates paths — a normal completion appears
  to also reach the exceptional exit — which is conservative for the
  must-release and must-hold analyses built on top, and avoids the code
  blow-up of duplicating finally bodies per exit kind.

Two distinguished exits: ``cfg.exit`` (returns and fallthrough) and
``cfg.raise_exit`` (exceptions escaping the function). RP011 demands
resources be released at both.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

NORMAL = "normal"
EXCEPTION = "exception"


class CondTest:
    """Marker: evaluation of a branch/loop condition or ``for`` iterable."""

    __slots__ = ("expr", "node")

    def __init__(self, expr: ast.expr, node: ast.stmt):
        self.expr = expr
        self.node = node

    @property
    def lineno(self) -> int:
        return getattr(self.expr, "lineno", getattr(self.node, "lineno", 1))


class WithEnter:
    """Marker: the context managers of one ``with`` statement were entered."""

    __slots__ = ("node", "items")

    def __init__(self, node: ast.With | ast.AsyncWith):
        self.node = node
        self.items = list(node.items)

    @property
    def lineno(self) -> int:
        return self.node.lineno


class WithExit:
    """Marker: ``__exit__`` ran for one ``with`` statement (any path)."""

    __slots__ = ("node", "items")

    def __init__(self, enter: WithEnter):
        self.node = enter.node
        self.items = enter.items

    @property
    def lineno(self) -> int:
        return self.node.lineno


#: Statement kinds a block may contain.
BlockStmt = object  # ast.stmt | CondTest | WithEnter | WithExit


class Block:
    """A straight-line sequence of statements with labelled out-edges."""

    __slots__ = ("index", "label", "stmts", "succs", "preds")

    def __init__(self, index: int, label: str):
        self.index = index
        self.label = label
        self.stmts: list[BlockStmt] = []
        self.succs: list[tuple["Block", str]] = []
        self.preds: list[tuple["Block", str]] = []

    def add_succ(self, other: "Block", kind: str = NORMAL) -> None:
        if (other, kind) not in self.succs:
            self.succs.append((other, kind))
            other.preds.append((self, kind))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.index} {self.label} stmts={len(self.stmts)}>"


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.raise_exit = self.new_block("raise")

    def new_block(self, label: str) -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def statements(self) -> Iterator[BlockStmt]:
        for block in self.blocks:
            yield from block.stmts


class _LoopFrame:
    __slots__ = ("break_target", "continue_target", "depth")

    def __init__(self, break_target: Block, continue_target: Block, depth: int):
        self.break_target = break_target
        self.continue_target = continue_target
        self.depth = depth


class _CleanupFrame:
    """A ``with`` exit or ``finally`` body every escaping path runs through."""

    __slots__ = ("enter", "leave")

    def __init__(self, enter: Block, leave: Block):
        self.enter = enter
        self.leave = leave


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.cfg = CFG(func)
        # Innermost-last stack of exception destinations: a raising
        # statement gains an EXCEPTION edge to every block in the top
        # entry (all handlers that might match, plus the no-match route).
        self.exc_stack: list[list[Block]] = [[self.cfg.raise_exit]]
        self.loops: list[_LoopFrame] = []
        # Cleanup obligations (with-exits, finally bodies) crossed by
        # return/break/continue, innermost last.
        self.cleanups: list[_CleanupFrame] = []

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        first = self.cfg.new_block("body")
        self.cfg.entry.add_succ(first)
        end = self.seq(self.cfg.func.body, first)
        if end is not None:
            end.add_succ(self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def exc_targets(self) -> list[Block]:
        return self.exc_stack[-1]

    def note_may_raise(self, block: Block) -> None:
        for target in self.exc_targets():
            block.add_succ(target, EXCEPTION)

    def unwind(self, block: Block, upto: int = 0) -> Block:
        """Route ``block`` through cleanup frames above index ``upto``.

        Returns the block from which the final jump should be made.
        Cleanup blocks are shared, so this accumulates edges rather than
        duplicating bodies (see module docstring on merged finallys).
        """
        current = block
        for frame in reversed(self.cleanups[upto:]):
            current.add_succ(frame.enter)
            current = frame.leave
        return current

    # ------------------------------------------------------------------
    def seq(self, stmts: list[ast.stmt], cur: Block | None) -> Block | None:
        """Lower a statement list; returns the open fallthrough block."""
        for stmt in stmts:
            if cur is None:
                # Unreachable code after return/raise/break: still lower
                # it (it may contain findings) into a fresh orphan block.
                cur = self.cfg.new_block("unreachable")
            cur = self.stmt(stmt, cur)
        return cur

    def stmt(self, stmt: ast.stmt, cur: Block) -> Block | None:
        if isinstance(stmt, ast.If):
            return self.build_if(stmt, cur)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self.build_loop(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self.build_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.build_with(stmt, cur)
        if isinstance(stmt, ast.Match):
            return self.build_match(stmt, cur)
        if isinstance(stmt, ast.Return):
            cur.stmts.append(stmt)
            # Evaluating a bare name or constant cannot raise; anything
            # richer (a call, an attribute, a comprehension) may.
            if stmt_may_raise(stmt):
                self.note_may_raise(cur)
            self.unwind(cur).add_succ(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cur.stmts.append(stmt)
            self.note_may_raise(cur)
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                frame = self.loops[-1]
                self.unwind(cur, frame.depth).add_succ(frame.break_target)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                frame = self.loops[-1]
                self.unwind(cur, frame.depth).add_succ(frame.continue_target)
            return None
        # Simple statement (incl. nested def/class, whose bodies do not
        # execute here): straight-line, conservatively may-raise.
        cur.stmts.append(stmt)
        if stmt_may_raise(stmt):
            self.note_may_raise(cur)
        return cur

    # ------------------------------------------------------------------
    def build_if(self, stmt: ast.If, cur: Block) -> Block | None:
        cur.stmts.append(CondTest(stmt.test, stmt))
        self.note_may_raise(cur)
        join = self.cfg.new_block("if.join")
        then_block = self.cfg.new_block("if.then")
        cur.add_succ(then_block)
        then_end = self.seq(stmt.body, then_block)
        if then_end is not None:
            then_end.add_succ(join)
        if stmt.orelse:
            else_block = self.cfg.new_block("if.else")
            cur.add_succ(else_block)
            else_end = self.seq(stmt.orelse, else_block)
            if else_end is not None:
                else_end.add_succ(join)
        else:
            cur.add_succ(join)
        if not join.preds:
            return None
        return join

    def build_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, cur: Block
    ) -> Block | None:
        header = self.cfg.new_block("loop.head")
        after = self.cfg.new_block("loop.after")
        cur.add_succ(header)
        test_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        header.stmts.append(CondTest(test_expr, stmt))
        self.note_may_raise(header)
        body = self.cfg.new_block("loop.body")
        header.add_succ(body)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            header.add_succ(after)
        self.loops.append(_LoopFrame(after, header, len(self.cleanups)))
        body_end = self.seq(stmt.body, body)
        self.loops.pop()
        if body_end is not None:
            body_end.add_succ(header)
        if stmt.orelse:
            # else runs on normal loop exit; it already flows into after.
            else_block = self.cfg.new_block("loop.else")
            if not infinite:
                header.add_succ(else_block)
            else_end = self.seq(stmt.orelse, else_block)
            if else_end is not None:
                else_end.add_succ(after)
        if not after.preds:
            return None
        return after

    def build_with(self, stmt: ast.With | ast.AsyncWith, cur: Block) -> Block | None:
        enter = WithEnter(stmt)
        # Context-expression evaluation + __enter__ may raise, with
        # nothing held yet: the pre-state flows to the outer targets.
        cur.stmts.append(enter)
        self.note_may_raise(cur)
        body = self.cfg.new_block("with.body")
        cur.add_succ(body)
        # One shared cleanup block runs __exit__ for every way out.
        cleanup = self.cfg.new_block("with.exit")
        cleanup.stmts.append(WithExit(enter))
        # Exceptions inside the body run __exit__ then propagate outward.
        for target in self.exc_targets():
            cleanup.add_succ(target, EXCEPTION)
        self.exc_stack.append([cleanup])
        self.cleanups.append(_CleanupFrame(cleanup, cleanup))
        body_end = self.seq(stmt.body, body)
        self.cleanups.pop()
        self.exc_stack.pop()
        after = self.cfg.new_block("with.after")
        if body_end is not None:
            body_end.add_succ(cleanup)
            cleanup.add_succ(after)
        if not after.preds:
            return None
        return after

    def build_try(self, stmt: ast.Try, cur: Block) -> Block | None:
        after = self.cfg.new_block("try.after")
        outer_targets = self.exc_targets()

        if stmt.finalbody:
            # Build the finally body once, in the *outer* exception
            # context (an exception inside finally propagates outward).
            fin_in = self.cfg.new_block("finally")
            fin_out = self.seq(stmt.finalbody, fin_in)
            if fin_out is None:
                fin_out = fin_in  # finally always raises/returns
            # Exceptional route: body/handler exceptions pass through the
            # finally and continue to the outer targets.
            for target in outer_targets:
                fin_out.add_succ(target, EXCEPTION)
            normal_next: Block = fin_in
            fin_frame = _CleanupFrame(fin_in, fin_out)
        else:
            fin_in = fin_out = None
            normal_next = after
            fin_frame = None

        # Handlers: exceptions raised inside a handler body go through
        # the finally (if any) to the outer context, not to siblings.
        handler_entries: list[Block] = []
        for handler in stmt.handlers:
            h_block = self.cfg.new_block("except")
            handler_entries.append(h_block)
            if fin_frame is not None:
                self.cleanups.append(fin_frame)
                self.exc_stack.append([fin_frame.enter])
            h_end = self.seq(handler.body, h_block)
            if fin_frame is not None:
                self.exc_stack.pop()
                self.cleanups.pop()
            if h_end is not None:
                h_end.add_succ(normal_next)

        # Body: exceptions may reach any handler, or (matching none)
        # escape through the finally to the outer context.
        body_targets = list(handler_entries)
        if fin_in is not None:
            body_targets.append(fin_in)
        elif not handler_entries:
            body_targets = list(outer_targets)
        if not body_targets:
            body_targets = list(outer_targets)
        body = self.cfg.new_block("try.body")
        cur.add_succ(body)
        self.exc_stack.append(body_targets)
        if fin_frame is not None:
            self.cleanups.append(fin_frame)
        body_end = self.seq(stmt.body, body)
        # orelse runs after a non-raising body, outside handler scope.
        self.exc_stack.pop()
        if body_end is not None and stmt.orelse:
            else_block = self.cfg.new_block("try.else")
            body_end.add_succ(else_block)
            if fin_frame is not None:
                self.exc_stack.append([fin_frame.enter])
            body_end = self.seq(stmt.orelse, else_block)
            if fin_frame is not None:
                self.exc_stack.pop()
        if fin_frame is not None:
            self.cleanups.pop()
        if body_end is not None:
            body_end.add_succ(normal_next)

        if fin_in is not None and fin_out is not None and (
            body_end is not None or any(h.preds for h in handler_entries)
            or fin_in.preds
        ):
            fin_out.add_succ(after)
        if not after.preds:
            return None
        return after

    def build_match(self, stmt: ast.Match, cur: Block) -> Block | None:
        cur.stmts.append(CondTest(stmt.subject, stmt))
        self.note_may_raise(cur)
        join = self.cfg.new_block("match.join")
        exhaustive = False
        for case in stmt.cases:
            case_block = self.cfg.new_block("match.case")
            cur.add_succ(case_block)
            case_end = self.seq(case.body, case_block)
            if case_end is not None:
                case_end.add_succ(join)
            if isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                exhaustive = True  # a bare wildcard `case _:` arm
        if not exhaustive:
            cur.add_succ(join)
        if not join.preds:
            return None
        return join


def stmt_may_raise(stmt) -> bool:
    """Whether evaluating ``stmt`` can raise, conservatively ``True``.

    The builder and the dataflow engine share this predicate: the builder
    uses it to decide which statements get exception edges, the engine to
    decide which statements contribute to a block's exceptional out-state.
    Markers (condition tests, ``__enter__``/``__exit__``) always may
    raise; so does every real statement except the handful whose
    evaluation is trivially total.
    """
    if not isinstance(stmt, ast.stmt):
        return True
    if isinstance(
        stmt, (ast.Pass, ast.Global, ast.Nonlocal, ast.Break, ast.Continue)
    ):
        return False
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and not isinstance(
            stmt.value, (ast.Name, ast.Constant)
        )
    return True


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function body into a :class:`CFG`."""
    return _Builder(func).build()
