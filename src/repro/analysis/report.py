"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.core import AnalysisResult


def render_text(result: AnalysisResult) -> str:
    """One line per finding plus a summary, for terminals and CI logs."""
    lines = [finding.format() for finding in result.findings]
    if result.findings:
        counts = ", ".join(
            f"{rule}: {n}" for rule, n in result.counts_by_rule().items()
        )
        lines.append(
            f"{len(result.findings)} violation"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"({counts}) in {result.files_scanned} files"
            + (f"; {result.suppressed} suppressed" if result.suppressed else "")
        )
    else:
        lines.append(
            f"0 violations in {result.files_scanned} files"
            + (f"; {result.suppressed} suppressed" if result.suppressed else "")
        )
    return "\n".join(lines) + "\n"


def render_json(result: AnalysisResult) -> str:
    """A stable JSON document (the CI artifact format)."""
    payload = {
        "tool": "repro.analysis",
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "suppressed_by_rule": dict(sorted(result.suppressed_by_rule.items())),
        "counts": result.counts_by_rule(),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
