"""Project-wide call graph over :class:`repro.analysis.core.Project`.

Resolution reuses the import-alias tables that :class:`SourceFile`
already builds and adds the small amount of type inference this
codebase's idioms need:

- ``f(...)`` — module-local functions, then import aliases
  (``from repro.runtime.faults import on_request``), then a unique
  project-wide name match.
- ``ClassName(...)`` — the class's ``__init__`` (constructors raise
  ``ConfigurationError`` in this codebase; they are call edges too).
- ``self.method(...)`` — the enclosing class, then its project bases.
- ``self.attr.method(...)`` — ``attr``'s type inferred from
  ``__init__``: either ``self.attr = ClassName(...)`` (including
  ``param or ClassName(...)`` defaults) or ``self.attr = param`` where
  the parameter is annotated with a project class.
- ``var.method(...)`` — one-hop local inference from
  ``var = ClassName(...)`` in the same function, or a parameter
  annotation on ``var``.
- ``mod.func(...)`` / ``Class.method(...)`` — full dotted resolution
  through aliases.

Anything else (dict methods, numpy, callables passed as values) resolves
to ``None`` and the flow rules treat it as an opaque leaf — the
documented imprecision: the graph under-approximates edges, so
interprocedural rules under-report rather than hallucinate paths.

The module also centralizes the *lock tables* the concurrency rules
share: per-class lock attributes (``self._lock = threading.RLock()``,
``self._slots = threading.Condition(self._lock)`` recording that the
condition shares its lock) and module-level locks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Project, SourceFile

_THREADING_LOCKS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
}


def module_name(path: Path | str) -> str:
    """Dotted module path for a file: ``src/repro/runtime/daemon.py`` ->
    ``repro.runtime.daemon``; files outside a ``src`` root use the stem."""
    parts = list(Path(path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class LockInfo:
    """One lock-like attribute of a class (or a module-level lock)."""

    kind: str  # "lock" | "rlock" | "condition"
    shares: str | None = None  # condition built on another lock attribute


@dataclass
class FunctionInfo:
    """One top-level function or method in the project."""

    qualname: str
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def param_annotation(self, name: str) -> ast.expr | None:
        args = self.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == name:
                return arg.annotation
        return None

    @property
    def is_public(self) -> bool:
        return all(not part.startswith("_") for part in self.qualname.split("."))


@dataclass
class ClassInfo:
    """One class: methods, bases, inferred attribute types, lock table."""

    name: str
    qualname: str
    module: str
    node: ast.ClassDef
    source: SourceFile
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)
    lock_attrs: dict[str, LockInfo] = field(default_factory=dict)
    thread_shared: bool = False


def _annotation_class_names(annotation: ast.expr | None) -> list[str]:
    """Candidate class names from an annotation: ``Deadline | None`` ->
    ``["Deadline"]``, ``Optional[RiskMapService]`` -> ``["RiskMapService"]``."""
    names: list[str] = []

    def visit(node: ast.expr | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.Name):
            if node.id != "None":
                names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.Subscript):
            visit(node.slice)
        elif isinstance(node, ast.Tuple):
            for elt in node.elts:
                visit(elt)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.append(node.value.split(".")[-1].split("[")[0])

    visit(annotation)
    return names


def calls_in(node: ast.AST, include_nested: bool = False) -> Iterator[ast.Call]:
    """Call expressions lexically inside ``node``.

    With ``include_nested=False``, calls inside nested function/lambda
    bodies are skipped — they execute later, under different lock state.
    """
    stack = [node]
    root = node
    while stack:
        current = stack.pop()
        if current is not root and not include_nested and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


class CallGraph:
    """Function/class index plus call resolution for one project."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.classes_by_qualname: dict[str, ClassInfo] = {}
        self._by_name: dict[str, list[FunctionInfo]] = {}
        self.module_locks: dict[str, dict[str, LockInfo]] = {}
        for source in project.files:
            self._index_module(source)
        self._resolve_cache: dict[int, FunctionInfo | None] = {}

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, source: SourceFile) -> None:
        module = module_name(source.path)
        locks: dict[str, LockInfo] = {}
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(source, module, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(source, module, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    info = self._lock_from_value(source, stmt.value, attr_env={})
                    if info is not None:
                        locks[target.id] = info
        if locks:
            self.module_locks[module] = locks

    def _add_function(
        self,
        source: SourceFile,
        module: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionInfo:
        qual = (
            f"{module}.{class_name}.{node.name}" if class_name
            else f"{module}.{node.name}"
        )
        info = FunctionInfo(
            qualname=qual, module=module, name=node.name,
            class_name=class_name, node=node, source=source,
        )
        self.functions[qual] = info
        self._by_name.setdefault(node.name, []).append(info)
        return info

    def _index_class(self, source: SourceFile, module: str, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            name=node.name,
            qualname=f"{module}.{node.name}",
            module=module,
            node=node,
            source=source,
        )
        for deco in node.decorator_list:
            name = deco.func if isinstance(deco, ast.Call) else deco
            dotted = source.qualified_name(name) or ""
            if dotted.split(".")[-1] == "thread_shared":
                cls.thread_shared = True
        for base in node.bases:
            dotted = source.qualified_name(base)
            if dotted:
                cls.base_names.append(dotted.split(".")[-1])
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = self._add_function(
                    source, module, stmt, class_name=node.name
                )
        init = cls.methods.get("__init__")
        if init is not None:
            self._infer_init(cls, init)
        # `@thread_shared` contracts guarantee a `_lock` even when the
        # assignment form is unusual; keep the conventional entry.
        if cls.thread_shared and "_lock" not in cls.lock_attrs:
            cls.lock_attrs["_lock"] = LockInfo(kind="lock")
        self.classes.setdefault(node.name, cls)
        self.classes_by_qualname[cls.qualname] = cls

    def _infer_init(self, cls: ClassInfo, init: FunctionInfo) -> None:
        """Populate ``attr_types`` and ``lock_attrs`` from ``__init__``."""
        for stmt in ast.walk(init.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            lock = self._lock_from_value(
                init.source, stmt.value, attr_env=cls.lock_attrs
            )
            if lock is not None:
                cls.lock_attrs[attr] = lock
                continue
            type_name = self._type_from_value(init, stmt.value)
            if type_name is not None:
                cls.attr_types[attr] = type_name

    def _lock_from_value(
        self, source: SourceFile, value: ast.expr, attr_env: dict[str, LockInfo]
    ) -> LockInfo | None:
        if not isinstance(value, ast.Call):
            return None
        dotted = source.qualified_name(value.func)
        kind = _THREADING_LOCKS.get(dotted or "")
        if kind is None:
            return None
        shares = None
        if kind == "condition" and value.args:
            arg = value.args[0]
            if (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"
                and arg.attr in attr_env
            ):
                shares = arg.attr
        return LockInfo(kind=kind, shares=shares)

    def _type_from_value(self, init: FunctionInfo, value: ast.expr) -> str | None:
        """Class name constructed/threaded into a ``self.attr = ...``."""
        candidates: list[ast.expr] = [value]
        if isinstance(value, ast.BoolOp):
            candidates = list(value.values)
        elif isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        for expr in candidates:
            if isinstance(expr, ast.Call):
                dotted = init.source.qualified_name(expr.func)
                if dotted:
                    tail = dotted.split(".")[-1]
                    if tail in self.classes:
                        return tail
            elif isinstance(expr, ast.Name):
                for name in _annotation_class_names(
                    init.param_annotation(expr.id)
                ):
                    if name in self.classes:
                        return name
        return None

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def class_of(self, info: FunctionInfo) -> ClassInfo | None:
        if info.class_name is None:
            return None
        return self.classes_by_qualname.get(
            f"{info.module}.{info.class_name}"
        ) or self.classes.get(info.class_name)

    def method_on(self, cls: ClassInfo | None, name: str) -> FunctionInfo | None:
        seen: set[str] = set()
        while cls is not None and cls.qualname not in seen:
            seen.add(cls.qualname)
            if name in cls.methods:
                return cls.methods[name]
            cls = next(
                (self.classes[b] for b in cls.base_names if b in self.classes),
                None,
            )
        return None

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        chain: list[ClassInfo] = []
        seen: set[str] = set()
        while cls is not None and cls.qualname not in seen:
            seen.add(cls.qualname)
            chain.append(cls)
            cls = next(
                (self.classes[b] for b in cls.base_names if b in self.classes),
                None,
            )
        return chain

    def _function_by_dotted(self, dotted: str) -> FunctionInfo | None:
        hit = self.functions.get(dotted)
        if hit is not None:
            return hit
        tail = dotted.split(".")[-1]
        matches = self._by_name.get(tail, [])
        if len(matches) == 1:
            return matches[0]
        # Disambiguate `pkg.mod.Class.method` / `pkg.mod.func` suffixes.
        suffix = ".".join(dotted.split(".")[-2:])
        suffixed = [f for f in matches if f.qualname.endswith("." + suffix)]
        if len(suffixed) == 1:
            return suffixed[0]
        return None

    def _class_by_dotted(self, dotted: str) -> ClassInfo | None:
        hit = self.classes_by_qualname.get(dotted)
        if hit is not None:
            return hit
        return self.classes.get(dotted.split(".")[-1])

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve(self, call: ast.Call, caller: FunctionInfo) -> FunctionInfo | None:
        key = id(call)
        if key not in self._resolve_cache:
            self._resolve_cache[key] = self._resolve(call, caller)
        return self._resolve_cache[key]

    def _resolve(self, call: ast.Call, caller: FunctionInfo) -> FunctionInfo | None:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, caller)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, caller)
        return None

    def _resolve_name(self, name: str, caller: FunctionInfo) -> FunctionInfo | None:
        local = self.functions.get(f"{caller.module}.{name}")
        if local is not None:
            return local
        # Constructor call: the bare name is itself a class reference
        # (same module or imported) — not an inferred variable type,
        # which would conflate `instance(...)` with `__init__`.
        dotted = caller.source.aliases.get(name, name)
        cls = self.classes_by_qualname.get(dotted) or self.classes.get(
            dotted.split(".")[-1]
        )
        if cls is not None and (name == cls.name or name in caller.source.aliases):
            return self.method_on(cls, "__init__")
        dotted = caller.source.aliases.get(name)
        if dotted:
            hit = self._function_by_dotted(dotted)
            if hit is not None:
                return hit
        matches = self._by_name.get(name, [])
        if len(matches) == 1 and matches[0].class_name is None:
            return matches[0]
        return None

    def _resolve_attribute(
        self, func: ast.Attribute, caller: FunctionInfo
    ) -> FunctionInfo | None:
        method = func.attr
        receiver = func.value
        cls = self.receiver_class(receiver, caller)
        if cls is not None:
            return self.method_on(cls, method)
        dotted = caller.source.qualified_name(func)
        if dotted:
            return self._function_by_dotted(dotted)
        return None

    def receiver_class(
        self, receiver: ast.expr, caller: FunctionInfo
    ) -> ClassInfo | None:
        """Infer the class of a method-call receiver, or ``None``."""
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls") and caller.class_name:
                return self.class_of(caller)
            return self._receiver_class_of_name(receiver.id, caller)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id in ("self", "cls")
            and caller.class_name
        ):
            cls = self.class_of(caller)
            for candidate in self.mro(cls) if cls else []:
                type_name = candidate.attr_types.get(receiver.attr)
                if type_name is not None:
                    return self.classes.get(type_name)
        if isinstance(receiver, (ast.Attribute, ast.Name)):
            dotted = caller.source.qualified_name(receiver)
            if dotted:
                return self._class_by_dotted(dotted)
        return None

    def _receiver_class_of_name(
        self, name: str, caller: FunctionInfo
    ) -> ClassInfo | None:
        """Class of a bare name: class ref, annotated param, or one-hop
        local ``var = ClassName(...)``."""
        dotted = caller.source.aliases.get(name, name)
        cls = self.classes_by_qualname.get(dotted) or (
            self.classes.get(dotted.split(".")[-1])
            if dotted.split(".")[-1] != name or name in self.classes
            else None
        )
        if cls is not None:
            return cls
        for type_name in _annotation_class_names(caller.param_annotation(name)):
            if type_name in self.classes:
                return self.classes[type_name]
        for stmt in ast.walk(caller.node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name
                and isinstance(stmt.value, ast.Call)
            ):
                value_dotted = caller.source.qualified_name(stmt.value.func)
                if value_dotted:
                    tail = value_dotted.split(".")[-1]
                    if tail in self.classes:
                        return self.classes[tail]
        return None

    # ------------------------------------------------------------------
    def resolved_calls(
        self, info: FunctionInfo, include_nested: bool = False
    ) -> Iterator[tuple[ast.Call, FunctionInfo]]:
        """``(call node, resolved callee)`` pairs inside one function."""
        for call in calls_in(info.node, include_nested=include_nested):
            callee = self.resolve(call, info)
            if callee is not None and callee.node is not info.node:
                yield call, callee
