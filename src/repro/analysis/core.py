"""Core machinery of the invariant analyzer: files, findings, checkers.

The framework is deliberately small: a :class:`Project` loads python
sources into :class:`SourceFile` objects (text, ``ast`` tree, suppression
comments), :class:`Checker` subclasses emit :class:`Finding` objects from
per-file or cross-file passes, and :func:`run_analysis` orchestrates one
scan. Everything rests on the stdlib ``ast`` module — no third-party
linter machinery — because the rules encode *this repository's* contracts
(seeded generators, ``ReproError`` discipline, process-pool picklability,
``@thread_shared`` lock discipline, reference twins), not generic style.

Suppressions are explicit and narrow: a trailing ``# repro: ignore[RP004]``
comment silences exactly the named rule(s) on exactly that line (the line
the finding anchors to — for a multi-line statement, the line of the
offending expression). One deliberate widening: a suppression written
anywhere on a ``def``/``class`` header — any decorator line through the
end of the signature — covers findings anchored anywhere on that header,
so decorated definitions can be suppressed without guessing which line
the rule anchors to. ``# repro: ignore`` with no rule list silences every
rule on its line; use it sparingly, it defeats the audit trail.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigurationError

#: Severity labels, ordered most severe first. Any finding fails the gate;
#: the label communicates whether the contract is load-bearing (``error`` —
#: breaking it corrupts results or crashes pools) or hygienic (``warning``).
SEVERITIES = ("error", "warning")

#: Matches one suppression comment. Examples::
#:
#:     risky_call()          # repro: ignore[RP001]
#:     legacy_default = []   # repro: ignore[RP006, RP002]
#:     anything_at_all()     # repro: ignore
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Sentinel rule set meaning "every rule" (bare ``# repro: ignore``).
_ALL_RULES = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """``{line number: suppressed rule ids}`` from ``# repro: ignore`` comments."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = _ALL_RULES
        else:
            table[lineno] = frozenset(
                rule.strip() for rule in rules.split(",") if rule.strip()
            )
    return table


class SourceFile:
    """One parsed python source: text, AST, imports, suppressions."""

    def __init__(self, path: Path, display_path: str | None = None):
        self.path = Path(path)
        self.display = display_path or str(path)
        self.text = self.path.read_text(encoding="utf-8")
        self.suppressions = parse_suppressions(self.text)
        self.parse_error: SyntaxError | None = None
        try:
            self.tree: ast.Module = ast.parse(self.text)
        except SyntaxError as exc:
            self.parse_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self._aliases: dict[str, str] | None = None
        self._header_spans: list[tuple[int, int, frozenset[str]]] | None = None

    # ------------------------------------------------------------------
    # Dotted-name resolution through import aliases
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> dotted origin, from this module's import statements.

        ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
        datetime as dt`` maps ``dt -> datetime.datetime``. Used to resolve
        attribute chains (``np.random.seed``) back to canonical module
        paths (``numpy.random.seed``) regardless of local spelling.
        """
        if self._aliases is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for item in node.names:
                        local = item.asname or item.name.split(".")[0]
                        origin = item.name if item.asname else local
                        table[local] = origin
                elif isinstance(node, ast.ImportFrom) and node.module:
                    if node.level:  # relative import: origin is package-local
                        continue
                    for item in node.names:
                        local = item.asname or item.name
                        table[local] = f"{node.module}.{item.name}"
            self._aliases = table
        return self._aliases

    def qualified_name(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        The chain's head is resolved through :attr:`aliases`, so
        ``np.random.seed`` and ``numpy.random.seed`` both come back as
        ``"numpy.random.seed"``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    @property
    def header_spans(self) -> list[tuple[int, int, frozenset[str]]]:
        """``(start, end, rules)`` per def/class header carrying a suppression.

        The span runs from the first decorator line through the last line
        of the signature (the line before the body starts), so a
        ``# repro: ignore[...]`` trailing either the decorator or the
        ``def``/``class`` line suppresses findings anchored anywhere on
        the decorated statement's header.
        """
        if self._header_spans is None:
            spans: list[tuple[int, int, frozenset[str]]] = []
            for node in ast.walk(self.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                start = min(
                    [node.lineno]
                    + [deco.lineno for deco in node.decorator_list]
                )
                if node.body and node.body[0].lineno > node.lineno:
                    end = node.body[0].lineno - 1
                else:  # one-liner: ``def f(): return 1``
                    end = node.lineno
                rules: set[str] = set()
                for line in range(start, end + 1):
                    rules.update(self.suppressions.get(line, ()))
                if rules:
                    spans.append((start, end, frozenset(rules)))
            self._header_spans = spans
        return self._header_spans

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if rules is not None and (
            rules is _ALL_RULES or "*" in rules or finding.rule in rules
        ):
            return True
        for start, end, span_rules in self.header_spans:
            if start <= finding.line <= end and (
                "*" in span_rules or finding.rule in span_rules
            ):
                return True
        return False


class Project:
    """Every file of one analysis run, plus the cross-file indices.

    Parameters
    ----------
    paths:
        Files and/or directories; directories are walked for ``*.py``.
    test_roots:
        Directories whose python files count as "tests" for the
        reference-twin rule (RP005). Defaults to ``tests/`` and
        ``benchmarks/`` siblings of the current working directory when they
        exist. Pass an empty list to disable twin/test resolution.
    """

    def __init__(
        self,
        paths: Sequence[str | Path],
        test_roots: Sequence[str | Path] | None = None,
    ):
        self.files: list[SourceFile] = []
        seen: set[Path] = set()
        for path in paths:
            for file_path in self._expand(Path(path)):
                resolved = file_path.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                self.files.append(SourceFile(file_path))
        if test_roots is None:
            test_roots = [p for p in (Path("tests"), Path("benchmarks")) if p.is_dir()]
        self.test_roots = [Path(root) for root in test_roots]
        self._test_identifiers: frozenset[str] | None = None

    @staticmethod
    def _expand(path: Path) -> Iterable[Path]:
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path

    # ------------------------------------------------------------------
    # Cross-file index: identifiers referenced anywhere under test roots
    # ------------------------------------------------------------------
    @property
    def test_identifiers(self) -> frozenset[str]:
        """Every name/attribute/import segment referenced by the test roots.

        RP005 resolves "does some test exercise this reference twin" by
        membership here: a twin named ``chamfer_distance_reference`` is
        covered iff some file under a test root mentions that identifier
        (as a name, an attribute, or an import).
        """
        if self._test_identifiers is None:
            referenced: set[str] = set()
            for root in self.test_roots:
                for path in sorted(root.rglob("*.py")):
                    try:
                        tree = ast.parse(path.read_text(encoding="utf-8"))
                    except (SyntaxError, OSError):
                        continue
                    for node in ast.walk(tree):
                        if isinstance(node, ast.Name):
                            referenced.add(node.id)
                        elif isinstance(node, ast.Attribute):
                            referenced.add(node.attr)
                        elif isinstance(node, ast.ImportFrom):
                            if node.module:
                                referenced.update(node.module.split("."))
                            referenced.update(item.name for item in node.names)
                        elif isinstance(node, ast.Import):
                            for item in node.names:
                                referenced.update(item.name.split("."))
            self._test_identifiers = frozenset(referenced)
        return self._test_identifiers


class Checker:
    """Base class for one rule.

    Subclasses set ``rule`` / ``severity`` / ``description`` and override
    :meth:`check_file` (independent per-file pass) and/or
    :meth:`check_project` (one pass over the whole :class:`Project`, for
    rules that resolve call sites or test coverage across files).
    Register instances with :func:`repro.analysis.checkers.register_checker`
    so the CLI and the ``make lint`` gate pick them up.
    """

    rule: str = "RP000"
    severity: str = "error"
    description: str = ""

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=source.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            severity=self.severity,
            message=message,
        )


@dataclass
class AnalysisResult:
    """Outcome of one :func:`run_analysis` scan."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    suppressed_by_rule: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def run_analysis(
    paths: Sequence[str | Path],
    checkers: Sequence[Checker],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    test_roots: Sequence[str | Path] | None = None,
) -> AnalysisResult:
    """Run ``checkers`` over ``paths`` and return the surviving findings.

    ``select`` keeps only the named rules, ``ignore`` drops the named
    rules; suppression comments then filter line-by-line. Findings come
    back sorted by (path, line, col, rule).
    """
    chosen = list(checkers)
    if select:
        wanted = set(select)
        unknown = wanted - {checker.rule for checker in chosen}
        if unknown:
            raise ConfigurationError(f"unknown rule(s) in --select: {sorted(unknown)}")
        chosen = [checker for checker in chosen if checker.rule in wanted]
    if ignore:
        dropped = set(ignore)
        chosen = [checker for checker in chosen if checker.rule not in dropped]

    project = Project(paths, test_roots=test_roots)
    result = AnalysisResult(files_scanned=len(project.files))
    raw: list[tuple[SourceFile | None, Finding]] = []
    for source in project.files:
        if source.parse_error is not None:
            raw.append((
                source,
                Finding(
                    path=source.display,
                    line=source.parse_error.lineno or 1,
                    col=(source.parse_error.offset or 1) - 1,
                    rule="RP000",
                    severity="error",
                    message=f"syntax error: {source.parse_error.msg}",
                ),
            ))
            continue
        for checker in chosen:
            for finding in checker.check_file(source):
                raw.append((source, finding))
    sources_by_display = {source.display: source for source in project.files}
    for checker in chosen:
        for finding in checker.check_project(project):
            raw.append((sources_by_display.get(finding.path), finding))

    for source, finding in raw:
        if source is not None and source.is_suppressed(finding):
            result.suppressed += 1
            result.suppressed_by_rule[finding.rule] = (
                result.suppressed_by_rule.get(finding.rule, 0) + 1
            )
        else:
            result.findings.append(finding)
    result.findings.sort()
    return result
