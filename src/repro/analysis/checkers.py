"""The rule suite: this repository's standing contracts as checkers.

Every rule here encodes an invariant the codebase already relies on (see
ARCHITECTURE §8 for the narrative): RP001 keeps results reproducible,
RP002 keeps the error surface catchable, RP003 keeps process-pool tasks
picklable, RP004 keeps ``@thread_shared`` services data-race free, RP005
keeps every vectorized kernel pinned to its golden-tested reference twin,
and RP006 catches the classic python foot-guns (mutable defaults,
shadowed builtins). The flow-sensitive rules RP007–RP011 (lock order,
atomicity, deadline propagation, exception contracts, resource
discipline) live in :mod:`~repro.analysis.flowrules` on top of the
CFG/dataflow/call-graph engine and are registered at the bottom of this
module.

Add a rule by subclassing :class:`~repro.analysis.core.Checker` and
calling :func:`register_checker` at import time; the CLI, ``make lint``,
and the self-run test pick it up automatically.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.core import Checker, Finding, Project, SourceFile
from repro.exceptions import ConfigurationError

#: The live rule registry, in report order.
ALL_CHECKERS: list[Checker] = []


def register_checker(checker: Checker) -> Checker:
    """Add one checker instance to the suite (one instance per rule id)."""
    if any(existing.rule == checker.rule for existing in ALL_CHECKERS):
        raise ConfigurationError(f"rule {checker.rule} is already registered")
    ALL_CHECKERS.append(checker)
    return checker


def rule_table() -> list[tuple[str, str, str]]:
    """``(rule, severity, description)`` rows for docs and ``--list-rules``."""
    return [(c.rule, c.severity, c.description) for c in ALL_CHECKERS]


# ---------------------------------------------------------------------------
# RP001 — determinism
# ---------------------------------------------------------------------------

class DeterminismChecker(Checker):
    """No hidden global randomness or wall clocks on library paths.

    Every stochastic draw must flow through a seeded
    ``np.random.Generator`` (``np.random.default_rng`` constructs one and
    is allowed); the legacy ``np.random.*`` module functions mutate hidden
    global state and break the bit-identity contract, as do the stdlib
    ``random`` module functions. Wall-clock reads (``time.time``,
    ``datetime.now``) make outputs depend on when they ran — monotonic
    timers (``perf_counter`` etc.) are fine, they only ever feed benchmark
    reports.
    """

    rule = "RP001"
    severity = "error"
    description = (
        "no legacy np.random/global random state or wall-clock reads; "
        "seeded Generators and monotonic timers only"
    )

    #: numpy.random attributes that construct explicit generator objects.
    NUMPY_ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64",
    })
    #: Wall-clock calls (resolved dotted names).
    WALL_CLOCKS = frozenset({
        "time.time", "time.time_ns", "time.ctime", "time.localtime",
        "time.gmtime", "time.asctime",
        "datetime.datetime.now", "datetime.datetime.today",
        "datetime.datetime.utcnow", "datetime.date.today",
    })

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = source.qualified_name(node.func)
            if name is None:
                continue
            if name in self.WALL_CLOCKS:
                yield self.finding(
                    source, node,
                    f"wall-clock call {name}() makes output depend on run "
                    "time; inject a clock or use time.perf_counter for "
                    "durations",
                )
            elif name.startswith("numpy.random."):
                attr = name.split(".")[2]
                if attr not in self.NUMPY_ALLOWED:
                    yield self.finding(
                        source, node,
                        f"legacy numpy global-state RNG {name}(); use a "
                        "seeded np.random.default_rng(...) Generator "
                        "threaded through the call instead",
                    )
            elif name.startswith("random."):
                yield self.finding(
                    source, node,
                    f"stdlib global-state RNG {name}(); use a seeded "
                    "np.random.default_rng(...) Generator instead",
                )


# ---------------------------------------------------------------------------
# RP002 — exception discipline
# ---------------------------------------------------------------------------

class ExceptionChecker(Checker):
    """Library errors derive from ReproError; no bare/silent excepts.

    Callers are promised that ``except ReproError`` catches everything
    this package raises, so raising builtin exception types leaks
    uncatchable errors, and bare ``except:`` (or ``except Exception:
    pass``) hides failures the contract says must surface.
    """

    rule = "RP002"
    severity = "error"
    description = (
        "raise ReproError subclasses only; no bare except or silently "
        "swallowed Exception"
    )

    BUILTIN_RAISES = frozenset({
        "Exception", "BaseException", "ValueError", "TypeError",
        "RuntimeError", "KeyError", "IndexError", "AttributeError",
        "OSError", "IOError", "LookupError", "ArithmeticError",
        "ZeroDivisionError",
    })

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
            for stmt in body
        )

    @staticmethod
    def _protocol_raises(tree: ast.Module) -> set[ast.Raise]:
        """Raise nodes inside module/class ``__getattr__`` implementations.

        The lazy-import protocol *requires* ``__getattr__`` to raise
        ``AttributeError`` for unknown names, so those raises are exempt.
        """
        exempt: set[ast.Raise] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name in ("__getattr__", "__getattribute__")
            ):
                exempt.update(
                    n for n in ast.walk(node) if isinstance(n, ast.Raise)
                )
        return exempt

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        protocol_raises = self._protocol_raises(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        source, node,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt "
                        "and hides real failures; name the exceptions "
                        "(ReproError for library errors)",
                    )
                elif (
                    isinstance(node.type, ast.Name)
                    and node.type.id in ("Exception", "BaseException")
                    and self._is_silent(node.body)
                ):
                    yield self.finding(
                        source, node,
                        f"'except {node.type.id}: pass' silently swallows "
                        "every failure; handle or narrow it",
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                if (
                    isinstance(target, ast.Name)
                    and target.id in self.BUILTIN_RAISES
                    and not (
                        target.id == "AttributeError"
                        and node in protocol_raises
                    )
                ):
                    yield self.finding(
                        source, node,
                        f"raise {target.id} leaks a builtin exception past "
                        "'except ReproError'; raise a "
                        "repro.exceptions.ReproError subclass",
                    )


# ---------------------------------------------------------------------------
# RP003 — process-pool picklability
# ---------------------------------------------------------------------------

class PicklabilityChecker(Checker):
    """Task classes dispatched to worker pools must stay picklable.

    A class counts as pool-dispatched when (a) its constructor is visibly
    passed into ``parallel_map`` / ``run_deferred`` / ``predict_map``
    (directly in the call's arguments, or one assignment hop earlier in
    the same function), or (b) it advertises the task protocol by defining
    ``backend_hint``. Such classes must not store lambdas, locally defined
    functions, or ``threading`` primitives in instance state — those never
    pickle — unless the class defines ``__getstate__`` to strip them (the
    ``BaggingClassifier`` factory pattern).
    """

    rule = "RP003"
    severity = "error"
    description = (
        "pool-dispatched task classes must not capture lambdas/closures/"
        "locks in instance state unless __getstate__ strips them"
    )

    DISPATCHERS = frozenset({"parallel_map", "run_deferred", "predict_map"})
    THREADING_PRIMITIVES = frozenset({
        "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore", "Barrier",
    })

    # -- project pass ---------------------------------------------------
    def check_project(self, project: Project) -> Iterable[Finding]:
        class_defs: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        for source in project.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    class_defs.setdefault(node.name, (source, node))

        dispatched: dict[str, str] = {}  # class name -> evidence
        for source in project.files:
            for name, site in self._dispatched_classes(source, class_defs):
                dispatched.setdefault(name, site)
        for name, (source, node) in class_defs.items():
            if name not in dispatched and self._defines(node, "backend_hint"):
                dispatched.setdefault(name, f"defines backend_hint ({source.display})")

        for name, evidence in sorted(dispatched.items()):
            source, node = class_defs[name]
            if self._defines(node, "__getstate__"):
                continue  # the class strips unpicklable state itself
            yield from self._check_init(source, node, evidence)

    # -- dispatched-class resolution ------------------------------------
    def _dispatched_classes(
        self,
        source: SourceFile,
        class_defs: dict[str, tuple[SourceFile, ast.ClassDef]],
    ) -> Iterable[tuple[str, str]]:
        """(class name, evidence) pairs for pool call sites in one file."""
        for scope in ast.walk(source.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                continue
            assignments: dict[str, list[ast.AST]] = {}
            for stmt in ast.walk(scope):
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            assignments.setdefault(target.id, []).append(stmt.value)
            for call in ast.walk(scope):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                tail = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if tail not in self.DISPATCHERS:
                    continue
                site = f"{tail}() at {source.display}:{call.lineno}"
                argument_trees: list[ast.AST] = list(call.args) + [
                    kw.value for kw in call.keywords
                ]
                # one assignment hop: tasks = [...]; run_deferred(tasks)
                for arg in list(argument_trees):
                    if isinstance(arg, ast.Name):
                        argument_trees.extend(assignments.get(arg.id, ()))
                for tree in argument_trees:
                    for inner in ast.walk(tree):
                        if (
                            isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Name)
                            and inner.func.id in class_defs
                        ):
                            yield inner.func.id, site

    @staticmethod
    def _defines(node: ast.ClassDef, name: str) -> bool:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == name:
                return True
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name for t in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == name
            ):
                return True
        return False

    # -- instance-state inspection --------------------------------------
    def _check_init(
        self, source: SourceFile, node: ast.ClassDef, evidence: str
    ) -> Iterable[Finding]:
        init = next(
            (s for s in node.body
             if isinstance(s, ast.FunctionDef) and s.name == "__init__"),
            None,
        )
        if init is None:
            return
        local_defs = {
            s.name for s in ast.walk(init) if isinstance(s, ast.FunctionDef)
        } - {"__init__"}
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in stmt.targets
            ):
                continue
            problem = self._unpicklable(source, stmt.value, local_defs)
            if problem:
                yield self.finding(
                    source, stmt,
                    f"{node.name} is pool-dispatched ({evidence}) but its "
                    f"__init__ stores {problem} in instance state, which "
                    "never pickles; strip it in __getstate__ or pass "
                    "picklable state instead",
                )

    def _unpicklable(
        self, source: SourceFile, value: ast.AST, local_defs: set[str]
    ) -> str | None:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name) and value.id in local_defs:
            return f"locally defined function '{value.id}'"
        if isinstance(value, ast.Call):
            name = source.qualified_name(value.func)
            if name and name.startswith("threading."):
                attr = name.split(".", 1)[1]
                if attr in self.THREADING_PRIMITIVES:
                    return f"a threading.{attr}"
        return None


# ---------------------------------------------------------------------------
# RP004 — lock discipline for @thread_shared classes
# ---------------------------------------------------------------------------

class LockDisciplineChecker(Checker):
    """``@thread_shared`` classes mutate ``self._*`` only under their lock.

    The :func:`repro.runtime.concurrency.thread_shared` decorator declares
    a class safe to share across threads (the park-service daemon's
    singletons). The enforced contract: ``__init__`` creates ``self._lock``,
    and every other method mutates underscore-prefixed instance state
    (cache dicts, LRU registries, counters) only inside a
    ``with self._lock:`` block. Reads stay lock-free by design — the
    serving paths are read-mostly — so the rule targets exactly the
    writes that could corrupt a dict mid-resize or tear an LRU eviction.
    """

    rule = "RP004"
    severity = "error"
    description = (
        "@thread_shared classes must create self._lock in __init__ and "
        "mutate self._* attributes only inside 'with self._lock:' blocks"
    )

    MUTATORS = frozenset({
        "append", "extend", "insert", "pop", "popitem", "clear", "update",
        "setdefault", "move_to_end", "add", "remove", "discard",
        "appendleft", "popleft",
    })

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and self._is_thread_shared(source, node):
                yield from self._check_class(source, node)

    @staticmethod
    def _is_thread_shared(source: SourceFile, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = source.qualified_name(target)
            if name and name.split(".")[-1] == "thread_shared":
                return True
        return False

    def _check_class(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterable[Finding]:
        init = next(
            (s for s in node.body
             if isinstance(s, ast.FunctionDef) and s.name == "__init__"),
            None,
        )
        if init is None or not self._assigns_lock(init):
            yield self.finding(
                source, node,
                f"@thread_shared class {node.name} must assign self._lock "
                "(a threading.Lock/RLock) in __init__",
            )
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            yield from self._scan(source, node.name, method.body, locked=False)

    @staticmethod
    def _assigns_lock(init: ast.FunctionDef) -> bool:
        for stmt in ast.walk(init):
            targets: list[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "_lock"
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
        return False

    @staticmethod
    def _is_self_lock(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "_lock"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    @classmethod
    def _guarded_attr(cls, node: ast.AST) -> str | None:
        """The ``self._x`` attribute a target/chain roots at, if any."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr.startswith("_")
            and not node.attr.startswith("__")
            and node.attr != "_lock"
        ):
            return node.attr
        return None

    def _scan(
        self,
        source: SourceFile,
        class_name: str,
        body: list[ast.stmt],
        locked: bool,
    ) -> Iterable[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.With):
                inner_locked = locked or any(
                    self._is_self_lock(item.context_expr) for item in stmt.items
                )
                yield from self._scan(source, class_name, stmt.body, inner_locked)
                continue
            if not locked:
                yield from self._mutations(source, class_name, stmt)
            # recurse into compound statements, preserving the lock state
            for child_body in self._child_bodies(stmt):
                yield from self._scan(source, class_name, child_body, locked)

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies = []
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field_name, None)
            if block and not isinstance(stmt, ast.With):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", ()):
            bodies.append(handler.body)
        return bodies

    def _mutations(
        self, source: SourceFile, class_name: str, stmt: ast.stmt
    ) -> Iterable[Finding]:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.MUTATORS
            ):
                attr = self._guarded_attr(func.value)
                if attr is not None:
                    yield self.finding(
                        source, stmt,
                        f"{class_name}.{attr}.{func.attr}(...) mutates "
                        f"shared state outside 'with self._lock:' "
                        f"({class_name} is @thread_shared)",
                    )
            return
        for target in targets:
            attr = self._guarded_attr(target)
            if attr is not None:
                yield self.finding(
                    source, stmt,
                    f"assignment to {class_name}.{attr} outside "
                    f"'with self._lock:' ({class_name} is @thread_shared)",
                )


# ---------------------------------------------------------------------------
# RP005 — reference-twin pairing
# ---------------------------------------------------------------------------

class ReferenceTwinChecker(Checker):
    """Every ``*_reference`` twin must be exercised by a test.

    The standing contract since PR 1: every vectorized rewrite keeps its
    naive predecessor as an executable specification (``*_reference``
    functions, ``*_reference`` modules) and a test asserts equivalence.
    A twin nothing references is a contract that silently stopped being
    checked — this rule fails the gate until a file under the test roots
    (``tests/``, ``benchmarks/``) mentions the twin again.
    """

    rule = "RP005"
    severity = "error"
    description = (
        "every *_reference twin (function or module) must be referenced "
        "by a file under the test roots"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not project.test_roots:
            return
        referenced = project.test_identifiers
        for source in project.files:
            stem = source.path.stem
            twins: list[tuple[ast.AST, str]] = []
            if stem.endswith("_reference"):
                twins.append((source.tree.body[0] if source.tree.body else source.tree, stem))
            for node in source.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                    and node.name.endswith("_reference")
                ):
                    twins.append((node, node.name))
            for node, name in twins:
                if name not in referenced:
                    yield self.finding(
                        source, node,
                        f"reference twin '{name}' is not referenced by any "
                        "file under the test roots "
                        f"({', '.join(str(r) for r in project.test_roots)}); "
                        "add an equivalence test or retire the twin",
                    )


# ---------------------------------------------------------------------------
# RP006 — mutable defaults and shadowed builtins
# ---------------------------------------------------------------------------

class HygieneChecker(Checker):
    """Mutable default arguments and builtin shadowing.

    Mutable defaults alias one object across calls (the classic stale-cache
    bug); rebinding builtins like ``id``/``list``/``filter`` makes later
    code in the same scope silently wrong. Both are cheap to avoid and
    expensive to debug, so they gate like everything else.
    """

    rule = "RP006"
    severity = "warning"
    description = "no mutable default arguments; no shadowed builtins"

    MUTABLE_FACTORIES = frozenset({
        "list", "dict", "set", "bytearray", "OrderedDict", "defaultdict",
        "deque", "Counter",
    })
    SHADOWED_BUILTINS = frozenset({
        "list", "dict", "set", "tuple", "str", "int", "float", "bool",
        "bytes", "frozenset", "type", "object", "id", "input", "filter",
        "map", "zip", "range", "sum", "max", "min", "all", "any", "len",
        "hash", "next", "iter", "sorted", "reversed", "round", "abs",
        "open", "print", "vars", "format", "repr", "getattr", "setattr",
        "callable", "enumerate", "slice", "property", "eval", "exec",
        "compile", "breakpoint", "dir", "bin", "hex", "oct",
    })

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        # Bindings in a class body (method names, class attributes) live in
        # the class namespace and cannot shadow builtins for other code.
        class_scoped: set[ast.stmt] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                class_scoped.update(node.body)
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from self._check_defaults(source, node)
            yield from self._check_shadowing(
                source, node, class_level=node in class_scoped
            )

    def _check_defaults(self, source, node) -> Iterable[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        label = getattr(node, "name", "<lambda>")
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                kind = type(default).__name__.lower()
                yield self.finding(
                    source, default,
                    f"mutable default argument ({kind} literal) in "
                    f"'{label}' is shared across calls; default to None "
                    "and construct inside",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self.MUTABLE_FACTORIES
            ):
                yield self.finding(
                    source, default,
                    f"mutable default argument ({default.func.id}()) in "
                    f"'{label}' is shared across calls; default to None "
                    "and construct inside",
                )

    @staticmethod
    def _store_names(target: ast.AST) -> Iterable[ast.Name]:
        """Names actually *bound* by a target (not e.g. subscript indices)."""
        for name_node in ast.walk(target):
            if isinstance(name_node, ast.Name) and isinstance(
                name_node.ctx, ast.Store
            ):
                yield name_node

    def _check_shadowing(
        self, source, node, class_level: bool
    ) -> Iterable[Finding]:
        bound: list[tuple[ast.AST, str, str]] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.append((arg, arg.arg, "parameter"))
            # A method/class-attribute name lives in the class namespace and
            # shadows nothing outside it, so class-level defs are exempt.
            if not isinstance(node, ast.Lambda) and not class_level:
                bound.append((node, node.name, "function name"))
        elif isinstance(node, ast.ClassDef) and not class_level:
            bound.append((node, node.name, "class name"))
        elif isinstance(node, (ast.Assign, ast.For, ast.AsyncFor)) and not class_level:
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for name_node in self._store_names(target):
                    bound.append((name_node, name_node.id, "assignment"))
        elif (
            isinstance(node, ast.AnnAssign)
            and not class_level
            and isinstance(node.target, ast.Name)
        ):
            bound.append((node.target, node.target.id, "assignment"))
        elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
            for name_node in self._store_names(node.optional_vars):
                bound.append((name_node, name_node.id, "with-binding"))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.append((node, node.name, "except-binding"))
        elif isinstance(node, ast.comprehension):
            for name_node in self._store_names(node.target):
                bound.append((name_node, name_node.id, "comprehension target"))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                bound.append((node, local, "import"))
        for anchor, name, kind in bound:
            if name in self.SHADOWED_BUILTINS:
                yield self.finding(
                    source, anchor,
                    f"{kind} '{name}' shadows the builtin of the same "
                    "name; rename it",
                )


register_checker(DeterminismChecker())
register_checker(ExceptionChecker())
register_checker(PicklabilityChecker())
register_checker(LockDisciplineChecker())
register_checker(ReferenceTwinChecker())
register_checker(HygieneChecker())

# The flow-sensitive suite (RP007-RP011) lives in its own module on top
# of the cfg/dataflow/callgraph engine; imported last so it can use the
# core without a cycle.
from repro.analysis.flowrules import FLOW_CHECKERS  # noqa: E402

for _flow_checker in FLOW_CHECKERS:
    register_checker(_flow_checker)
