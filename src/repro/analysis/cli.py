"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit status is the gate: 0 when every selected rule is clean over the
given paths, 1 when any violation survives suppression filtering, 2 on
bad invocation. ``make lint`` and CI run this over ``src/repro`` with all
rules and over ``benchmarks``/``examples`` with the hygiene rule.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.checkers import ALL_CHECKERS, rule_table
from repro.analysis.core import run_analysis
from repro.analysis.report import render_json, render_text
from repro.exceptions import ConfigurationError, ReproError


DESCRIPTION = (
    "AST-based invariant analyzer for this repository's standing "
    "contracts (determinism, exception discipline, picklability, lock "
    "discipline, reference twins, hygiene) plus the flow-sensitive "
    "concurrency suite (lock order, atomicity, deadline propagation, "
    "exception contracts, resource discipline). Suppress one finding "
    "with a trailing '# repro: ignore[RPxxx]'."
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyzer's arguments (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact format)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--rule", default=None, metavar="RULES",
        help="comma-separated rule ids to run, e.g. --rule RP007,RP011 "
        "(merged with --select when both are given)",
    )
    parser.add_argument(
        "--ignore-rules", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="baseline file of known findings (matched by path/rule/"
        "message); only findings absent from it fail the gate",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="JSON",
        help="record the current findings into JSON at this path and "
        "exit 0; feed the file back via --baseline to fail only on new "
        "violations",
    )
    parser.add_argument(
        "--test-root", action="append", default=None, metavar="DIR",
        help="directory whose files count as tests for RP005 "
        "(repeatable; default: ./tests and ./benchmarks when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro lint", description=DESCRIPTION)
    add_arguments(parser)
    return parser


def _split(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _baseline_key(entry: dict) -> tuple[str, str, str]:
    return (
        str(entry.get("path", "")),
        str(entry.get("rule", "")),
        str(entry.get("message", "")),
    )


def _load_baseline(path: str) -> frozenset[tuple[str, str, str]]:
    """Known findings from a baseline file (or any ``--format json`` report).

    Baselines match on (path, rule, message) and deliberately *not* on
    line numbers, so unrelated edits that shift code do not resurrect a
    baselined finding.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data.get("findings", data) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ConfigurationError(
            "baseline must hold a JSON list under 'findings'"
        )
    return frozenset(_baseline_key(entry) for entry in entries)


def _write_baseline(path: str, result) -> None:
    payload = {
        "tool": "repro.analysis",
        "baseline": True,
        "findings": [
            {"path": f.path, "rule": f.rule, "message": f.message}
            for f in result.findings
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def run_from_args(args: argparse.Namespace, out) -> int:
    """Execute one analyzer invocation from parsed arguments."""
    if args.list_rules:
        for rule, severity, description in rule_table():
            out.write(f"{rule}  {severity:<7}  {description}\n")
        return 0
    select = (_split(args.select) or []) + (_split(args.rule) or [])
    try:
        result = run_analysis(
            args.paths,
            ALL_CHECKERS,
            select=select or None,
            ignore=_split(args.ignore_rules),
            test_roots=args.test_root,
        )
    except ReproError as exc:
        out.write(f"repro lint: {exc}\n")
        return 2
    if args.write_baseline:
        _write_baseline(args.write_baseline, result)
        out.write(
            f"recorded {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"to baseline {args.write_baseline}\n"
        )
        return 0
    baselined = 0
    if args.baseline:
        try:
            known = _load_baseline(args.baseline)
        except (OSError, ValueError, ConfigurationError) as exc:
            out.write(f"repro lint: cannot read baseline {args.baseline}: {exc}\n")
            return 2
        fresh = [
            finding for finding in result.findings
            if (finding.path, finding.rule, finding.message) not in known
        ]
        baselined = len(result.findings) - len(fresh)
        result.findings = fresh
    renderer = render_json if args.format == "json" else render_text
    out.write(renderer(result))
    if baselined and args.format == "text":
        out.write(
            f"{baselined} baselined finding"
            f"{'s' if baselined != 1 else ''} not counted "
            f"(baseline: {args.baseline})\n"
        )
    return 0 if result.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    return run_from_args(build_parser().parse_args(argv), out or sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
