"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit status is the gate: 0 when every selected rule is clean over the
given paths, 1 when any violation survives suppression filtering, 2 on
bad invocation. ``make lint`` and CI run this over ``src/repro`` with all
rules and over ``benchmarks``/``examples`` with the hygiene rule.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.checkers import ALL_CHECKERS, rule_table
from repro.analysis.core import run_analysis
from repro.analysis.report import render_json, render_text
from repro.exceptions import ReproError


DESCRIPTION = (
    "AST-based invariant analyzer for this repository's standing "
    "contracts (determinism, exception discipline, picklability, lock "
    "discipline, reference twins, hygiene). Suppress one finding with a "
    "trailing '# repro: ignore[RPxxx]'."
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyzer's arguments (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact format)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore-rules", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--test-root", action="append", default=None, metavar="DIR",
        help="directory whose files count as tests for RP005 "
        "(repeatable; default: ./tests and ./benchmarks when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro lint", description=DESCRIPTION)
    add_arguments(parser)
    return parser


def _split(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def run_from_args(args: argparse.Namespace, out) -> int:
    """Execute one analyzer invocation from parsed arguments."""
    if args.list_rules:
        for rule, severity, description in rule_table():
            out.write(f"{rule}  {severity:<7}  {description}\n")
        return 0
    try:
        result = run_analysis(
            args.paths,
            ALL_CHECKERS,
            select=_split(args.select),
            ignore=_split(args.ignore_rules),
            test_roots=args.test_root,
        )
    except ReproError as exc:
        out.write(f"repro lint: {exc}\n")
        return 2
    renderer = render_json if args.format == "json" else render_text
    out.write(renderer(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    return run_from_args(build_parser().parse_args(argv), out or sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
