"""Static invariant enforcement for the PAWS reproduction.

Five PRs of aggressive rewriting survive on a handful of standing
contracts: every stochastic draw flows through a seeded generator, every
library error derives from :class:`~repro.exceptions.ReproError`, every
process-pool task pickles, every ``@thread_shared`` service mutates its
caches under its lock, and every vectorized kernel keeps a golden-tested
``*_reference`` twin. This package turns those conventions into *checked
artifacts*: a small stdlib-``ast`` analysis framework
(:mod:`~repro.analysis.core`), a lexical rule suite encoding the
contracts (:mod:`~repro.analysis.checkers`, rules RP001–RP006), a
flow-sensitive engine — per-function CFGs (:mod:`~repro.analysis.cfg`),
a worklist dataflow solver (:mod:`~repro.analysis.dataflow`), and a
project call graph (:mod:`~repro.analysis.callgraph`) — carrying the
concurrency/flow rules RP007–RP011
(:mod:`~repro.analysis.flowrules`: lock-order consistency, atomicity,
deadline propagation, exception contracts, resource discipline), and
text/JSON reporters (:mod:`~repro.analysis.report`).

Run it as ``repro lint`` or ``python -m repro.analysis``; ``make lint``
/ ``make lint-flow`` and CI gate ``src/repro`` at zero violations. See
ARCHITECTURE §8 for the rule table and the suppression syntax.
"""

from repro.analysis.checkers import ALL_CHECKERS, register_checker, rule_table
from repro.analysis.core import (
    AnalysisResult,
    Checker,
    Finding,
    Project,
    SourceFile,
    run_analysis,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "ALL_CHECKERS",
    "AnalysisResult",
    "Checker",
    "Finding",
    "Project",
    "SourceFile",
    "register_checker",
    "render_json",
    "render_text",
    "rule_table",
    "run_analysis",
]
