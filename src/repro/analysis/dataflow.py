"""Worklist fixpoint engine over :mod:`repro.analysis.cfg` graphs.

The engine is a forward may/must solver parameterized by an
:class:`Analysis`: ``initial()`` seeds the entry, ``transfer(stmt, state)``
folds one block statement, ``join(states)`` merges incoming edges.
Exceptional out-states are statement-precise without block splitting: a
block's exceptional out-state is the join of ``exceptional(stmt, pre)``
over its statements, where ``pre`` is the state *before* that statement —
an acquire that fails leaves nothing held, while a release is credited
even if the releasing call itself raises (``close()`` failing still
closed the descriptor for analysis purposes).

:class:`LockSets` is the must-held lock lattice the concurrency rules
share: states are frozensets of lock identities, joined by intersection
(a lock counts as held only when *every* path holds it — the sound
direction for both "blocking call under lock" and lock-order edges).
Lock identity resolution is injected, because what counts as a lock
(``self._lock`` in a ``@thread_shared`` class, a module-level
``threading.Lock``) is project knowledge, not graph knowledge.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator

from repro.analysis.cfg import (
    CFG,
    EXCEPTION,
    Block,
    WithEnter,
    WithExit,
    stmt_may_raise,
)

#: Sentinel for "no path reaches this point yet".
UNREACHED = object()


class Analysis:
    """One forward dataflow problem; states must be hashable-comparable."""

    def initial(self):
        raise NotImplementedError

    def transfer(self, stmt, state):
        raise NotImplementedError

    def join(self, states: list):
        raise NotImplementedError

    def exceptional(self, stmt, state_before):
        """State contributed to the exception edge by ``stmt``.

        Defaults to the pre-state; override to credit partial effects
        (e.g. a release that raises still released).
        """
        return state_before


class BlockStates:
    """Solved in/out states per block."""

    __slots__ = ("in_state", "out_normal", "out_exc")

    def __init__(self):
        self.in_state = UNREACHED
        self.out_normal = UNREACHED
        self.out_exc = UNREACHED


def run_forward(cfg: CFG, analysis: Analysis) -> dict[Block, BlockStates]:
    """Iterate to fixpoint; returns per-block solved states."""
    states = {block: BlockStates() for block in cfg.blocks}
    states[cfg.entry].in_state = analysis.initial()
    worklist = [cfg.entry]
    max_passes = 4 * len(cfg.blocks) * max(1, len(cfg.blocks))
    passes = 0
    while worklist and passes < max_passes:
        passes += 1
        block = worklist.pop()
        record = states[block]
        if record.in_state is UNREACHED:
            continue
        out_normal, out_exc = _flow_block(analysis, block, record.in_state)
        if out_normal == record.out_normal and out_exc == record.out_exc:
            if record.out_normal is not UNREACHED:
                continue
        record.out_normal = out_normal
        record.out_exc = out_exc
        for succ, kind in block.succs:
            incoming = out_exc if kind == EXCEPTION else out_normal
            if incoming is UNREACHED:
                continue
            succ_record = states[succ]
            merged = _merge_edge(analysis, succ, states)
            if merged is not UNREACHED and merged != succ_record.in_state:
                succ_record.in_state = merged
                worklist.append(succ)
            elif succ_record.in_state is UNREACHED and merged is not UNREACHED:
                succ_record.in_state = merged
                worklist.append(succ)
    return states


def _merge_edge(analysis: Analysis, block: Block, states) -> object:
    incoming = []
    for pred, kind in block.preds:
        record = states[pred]
        value = record.out_exc if kind == EXCEPTION else record.out_normal
        if value is not UNREACHED:
            incoming.append(value)
    if not incoming:
        return UNREACHED
    return analysis.join(incoming)


def _flow_block(analysis: Analysis, block: Block, in_state):
    state = in_state
    exc_states = []
    for stmt in block.stmts:
        # Only statements that can raise feed the exception edge; a
        # trivially-total statement (``return name``) must not smuggle
        # its pre-state onto the exceptional path.
        if stmt_may_raise(stmt):
            exc_states.append(analysis.exceptional(stmt, state))
        state = analysis.transfer(stmt, state)
    out_exc = analysis.join(exc_states) if exc_states else in_state
    return state, out_exc


def iter_with_pre_states(
    cfg: CFG, analysis: Analysis, states: dict[Block, BlockStates] | None = None
) -> Iterator[tuple[object, object]]:
    """Yield ``(stmt, state-before-stmt)`` for every reachable statement."""
    if states is None:
        states = run_forward(cfg, analysis)
    for block in cfg.blocks:
        state = states[block].in_state
        if state is UNREACHED:
            continue
        for stmt in block.stmts:
            yield stmt, state
            state = analysis.transfer(stmt, state)


# ----------------------------------------------------------------------
# The shared must-held lock lattice
# ----------------------------------------------------------------------

class LockSets(Analysis):
    """Must-held lock sets: frozensets joined by intersection.

    ``resolve(expr)`` maps an expression to a lock identity string (e.g.
    ``"ModelRegistry._lock"``) or ``None`` when the expression is not a
    known lock — ``with open(...)`` and ``with deadline_scope(...)``
    stay out of the lattice entirely.
    """

    def __init__(self, resolve: Callable[[ast.expr], str | None]):
        self.resolve = resolve

    def initial(self) -> frozenset[str]:
        return frozenset()

    def join(self, states: list) -> frozenset[str]:
        merged = states[0]
        for state in states[1:]:
            merged = merged & state
        return merged

    def transfer(self, stmt, state: frozenset[str]) -> frozenset[str]:
        acquired, released = self._events(stmt)
        if released:
            state = state - released
        if acquired:
            state = state | acquired
        return state

    def exceptional(self, stmt, state_before: frozenset[str]) -> frozenset[str]:
        # A failing acquire holds nothing; a failing release still
        # dropped the lock as far as ordering/blocking rules care.
        _, released = self._events(stmt)
        if released:
            return state_before - released
        return state_before

    # ------------------------------------------------------------------
    def _events(self, stmt) -> tuple[frozenset[str], frozenset[str]]:
        if isinstance(stmt, WithEnter):
            locks = self._item_locks(stmt)
            return locks, frozenset()
        if isinstance(stmt, WithExit):
            locks = self._item_locks(stmt)
            return frozenset(), locks
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                if call.func.attr == "acquire":
                    lock = self.resolve(call.func.value)
                    if lock is not None:
                        return frozenset({lock}), frozenset()
                elif call.func.attr == "release":
                    lock = self.resolve(call.func.value)
                    if lock is not None:
                        return frozenset(), frozenset({lock})
        return frozenset(), frozenset()

    def _item_locks(self, marker) -> frozenset[str]:
        locks = set()
        for item in marker.items:
            lock = self.resolve(item.context_expr)
            if lock is not None:
                locks.add(lock)
        return locks


def held_lock_sets(
    cfg: CFG, resolve: Callable[[ast.expr], str | None]
) -> Iterator[tuple[object, frozenset[str]]]:
    """Yield ``(stmt, must-held lock set before stmt)`` for a function."""
    analysis = LockSets(resolve)
    yield from iter_with_pre_states(cfg, analysis)
