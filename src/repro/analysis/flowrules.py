"""Flow-sensitive concurrency rules RP007-RP011.

These rules ride on the analysis core built in this package —
:mod:`repro.analysis.cfg` (per-function control-flow graphs),
:mod:`repro.analysis.dataflow` (worklist fixpoint, must-held lock sets)
and :mod:`repro.analysis.callgraph` (project call graph) — and encode
the runtime's *cross-statement* contracts that the per-node rules
RP001-RP006 cannot see:

RP007  lock-order consistency: the project-wide lock-acquisition graph
       (including acquisitions reached through call edges) must be
       acyclic; re-entering a non-reentrant lock is a self-cycle.
RP008  atomicity on ``@thread_shared`` state: no check-then-act where
       the guarding read and the guarded write fall under different
       lock regions, and no blocking call (I/O, sleeps, pool submits,
       ``Condition.wait`` on a foreign lock) while holding a shared
       lock.
RP009  deadline propagation: a function that binds ``deadline`` must
       hand it to every deadline-aware project callee, either as an
       argument or by entering ``deadline_scope(deadline)``.
RP010  exception-contract flow: interprocedurally, only ``ReproError``
       subclasses may escape public entry points, and a dispatcher
       status ladder (a ``try`` whose handlers assign ``status``) must
       cover every class that can escape its body.
RP011  resource discipline: files, sockets, executors and locks
       acquired outside ``with`` must be released on every CFG path,
       including exceptional ones.

Shared machinery lives in :class:`FlowContext`, built once per
:class:`~repro.analysis.core.Project` and cached on it, so the five
rules pay for one call graph and one CFG per function between them.

Known imprecision (deliberate, documented in ARCHITECTURE §8): the call
graph under-approximates — unresolved calls (dict methods, numpy,
callables passed as values) are opaque leaves; lock acquisitions inside
branch conditions are not modelled; nested ``def``/``lambda`` bodies are
analysed in their lexical parent only where that is sound (RP009
closures) and skipped where it is not (lock state at call sites).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    calls_in,
)
from repro.analysis.cfg import CFG, WithEnter, build_cfg
from repro.analysis.core import Checker, Finding, Project, SourceFile
from repro.analysis.dataflow import (
    UNREACHED,
    Analysis,
    LockSets,
    iter_with_pre_states,
    run_forward,
)

#: Container-mutating method names (mirrors RP004's set; kept local so
#: the flow rules do not import the per-node checker module).
_MUTATORS = frozenset({
    "append", "extend", "insert", "pop", "popitem", "clear", "update",
    "setdefault", "move_to_end", "add", "remove", "discard",
    "appendleft", "popleft",
})

#: Dotted names that block the calling thread.
_BLOCKING_QUALIFIED = frozenset({
    "time.sleep", "os.fsync", "os.fdatasync", "subprocess.run",
    "subprocess.check_call", "subprocess.check_output", "subprocess.Popen",
    "concurrent.futures.wait", "concurrent.futures.as_completed",
    "shutil.copy", "shutil.copytree", "shutil.rmtree",
})

#: Attribute/method names that block regardless of receiver type (the
#: receiver is usually untyped: Path methods, executors, conditions).
_BLOCKING_METHODS = frozenset({
    "sleep", "wait", "submit", "shutdown", "iterdir", "is_dir", "is_file",
    "exists", "stat", "read_text", "read_bytes", "write_text",
    "write_bytes", "glob", "rglob", "unlink", "mkdir", "replace",
    "rename", "recv", "send", "sendall", "accept", "connect",
})

#: Builtin ancestor chains for the handful of builtins raised/caught in
#: this codebase; anything unknown defaults to ``Exception``.
_BUILTIN_ANCESTORS = {
    "ValueError": ("Exception",),
    "TypeError": ("Exception",),
    "KeyError": ("LookupError", "Exception"),
    "IndexError": ("LookupError", "Exception"),
    "AttributeError": ("Exception",),
    "RuntimeError": ("Exception",),
    "NotImplementedError": ("RuntimeError", "Exception"),
    "OSError": ("Exception",),
    "IOError": ("OSError", "Exception"),
    "FileNotFoundError": ("OSError", "Exception"),
    "FileExistsError": ("OSError", "Exception"),
    "PermissionError": ("OSError", "Exception"),
    "BrokenPipeError": ("ConnectionError", "OSError", "Exception"),
    "ConnectionResetError": ("ConnectionError", "OSError", "Exception"),
    "ConnectionError": ("OSError", "Exception"),
    "TimeoutError": ("OSError", "Exception"),
    "StopIteration": ("Exception",),
    "ArithmeticError": ("Exception",),
    "ZeroDivisionError": ("ArithmeticError", "Exception"),
    "OverflowError": ("ArithmeticError", "Exception"),
    "MemoryError": ("Exception",),
    "KeyboardInterrupt": ("BaseException",),
    "SystemExit": ("BaseException",),
    "GeneratorExit": ("BaseException",),
    "BaseException": (),
}

_CATCH_ALL = frozenset({"Exception", "BaseException"})

#: Calls whose assigned result is a resource needing release (RP011).
_RESOURCE_ACQUIRERS = {
    "open": "file",
    "os.open": "file descriptor",
    "os.dup": "file descriptor",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
}
_RESOURCE_ACQUIRER_TAILS = {
    "ThreadPoolExecutor": "executor",
    "ProcessPoolExecutor": "executor",
}
#: Calls that *use* a tracked resource without taking ownership of it.
_RESOURCE_NEUTRAL = frozenset({
    "os.write", "os.read", "os.fsync", "os.fdatasync", "os.lseek",
    "os.fstat", "os.ftruncate", "os.isatty", "print", "len", "repr",
    "str", "select.select",
})
_RESOURCE_RELEASE_METHODS = frozenset({"close", "shutdown", "release"})


# ======================================================================
# Shared flow context: one call graph + one CFG per function, per run
# ======================================================================

class FlowContext:
    """Everything the flow rules share for one project scan."""

    def __init__(self, project: Project):
        self.project = project
        self.graph = CallGraph(project)
        self._cfgs: dict[int, CFG] = {}
        self._lock_kinds: dict[str, str] = {}
        self._thread_shared_locks: set[str] = set()
        for cls in self.graph.classes_by_qualname.values():
            for attr, info in cls.lock_attrs.items():
                lock_id = f"{cls.name}.{attr if info.shares is None else info.shares}"
                self._lock_kinds.setdefault(f"{cls.name}.{attr}", info.kind)
                if cls.thread_shared:
                    self._thread_shared_locks.add(lock_id)
        for module, locks in self.graph.module_locks.items():
            for name, info in locks.items():
                self._lock_kinds.setdefault(f"{module}.{name}", info.kind)
        self._transitive_acquires: dict[str, frozenset[str]] | None = None
        self._blocking: dict[str, str] | None = None
        self._escapes: dict[str, dict[str, tuple[str, int, str]]] | None = None

    @classmethod
    def of(cls, project: Project) -> "FlowContext":
        ctx = getattr(project, "_flow_context", None)
        if ctx is None or ctx.project is not project:
            ctx = cls(project)
            project._flow_context = ctx
        return ctx

    # ------------------------------------------------------------------
    def cfg(self, info: FunctionInfo) -> CFG:
        key = id(info.node)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(info.node)
        return self._cfgs[key]

    def functions(self) -> Iterable[FunctionInfo]:
        return self.graph.functions.values()

    # ------------------------------------------------------------------
    # Lock identity
    # ------------------------------------------------------------------
    def lock_resolver(self, info: FunctionInfo):
        """``expr -> lock id`` resolver bound to one function's scope.

        A ``Condition`` built on a class lock resolves to the underlying
        lock's identity: ``with self._slots:`` holds ``Cls._lock``.
        """
        cls = self.graph.class_of(info)
        module_locks = self.graph.module_locks.get(info.module, {})

        def resolve(expr: ast.expr) -> str | None:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
                and cls is not None
            ):
                for owner in self.graph.mro(cls):
                    lock = owner.lock_attrs.get(expr.attr)
                    if lock is not None:
                        attr = lock.shares if lock.shares else expr.attr
                        return f"{owner.name}.{attr}"
                return None
            if isinstance(expr, ast.Name) and expr.id in module_locks:
                return f"{info.module}.{expr.id}"
            return None

        return resolve

    def lock_kind(self, lock_id: str) -> str:
        return self._lock_kinds.get(lock_id, "lock")

    def is_thread_shared_lock(self, lock_id: str) -> bool:
        return lock_id in self._thread_shared_locks

    # ------------------------------------------------------------------
    # Transitive lock acquisitions (RP007 call edges)
    # ------------------------------------------------------------------
    def transitive_acquires(self) -> dict[str, frozenset[str]]:
        if self._transitive_acquires is None:
            own: dict[str, set[str]] = {}
            callees: dict[str, list[str]] = {}
            for info in self.functions():
                resolve = self.lock_resolver(info)
                acquired: set[str] = set()
                for stmt in self.cfg(info).statements():
                    if isinstance(stmt, WithEnter):
                        for item in stmt.items:
                            lock = resolve(item.context_expr)
                            if lock is not None:
                                acquired.add(lock)
                    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                        func = stmt.value.func
                        if isinstance(func, ast.Attribute) and func.attr == "acquire":
                            lock = resolve(func.value)
                            if lock is not None:
                                acquired.add(lock)
                own[info.qualname] = acquired
                callees[info.qualname] = [
                    callee.qualname for _, callee in
                    self.graph.resolved_calls(info, include_nested=False)
                ]
            table = {qual: set(locks) for qual, locks in own.items()}
            for _ in range(len(table) + 1):
                changed = False
                for qual, locks in table.items():
                    for callee in callees.get(qual, ()):
                        extra = table.get(callee)
                        if extra and not extra <= locks:
                            locks |= extra
                            changed = True
                if not changed:
                    break
            self._transitive_acquires = {
                qual: frozenset(locks) for qual, locks in table.items()
            }
        return self._transitive_acquires

    # ------------------------------------------------------------------
    # Transitively-blocking functions (RP008b)
    # ------------------------------------------------------------------
    def blocking_reason(self, qualname: str) -> str | None:
        """Why a project function blocks, or ``None`` if it does not."""
        if self._blocking is None:
            reasons: dict[str, str] = {}
            callees: dict[str, list[str]] = {}
            for info in self.functions():
                for call in calls_in(info.node, include_nested=False):
                    label = self._blocking_primitive(call, info)
                    if label is not None:
                        reasons.setdefault(info.qualname, label)
                        break
                callees[info.qualname] = [
                    callee.qualname for _, callee in
                    self.graph.resolved_calls(info, include_nested=False)
                ]
            for _ in range(len(callees) + 1):
                changed = False
                for qual, targets in callees.items():
                    if qual in reasons:
                        continue
                    for target in targets:
                        if target in reasons:
                            reasons[qual] = f"calls blocking {target.split('.')[-1]}()"
                            changed = True
                            break
                if not changed:
                    break
            self._blocking = reasons
        return self._blocking.get(qualname)

    def _blocking_primitive(self, call: ast.Call, info: FunctionInfo) -> str | None:
        dotted = info.source.qualified_name(call.func)
        if dotted in _BLOCKING_QUALIFIED:
            return f"{dotted}()"
        if isinstance(call.func, ast.Attribute) and call.func.attr in _BLOCKING_METHODS:
            return f".{call.func.attr}()"
        if dotted == "open":
            return "open()"
        return None

    # ------------------------------------------------------------------
    # Exception class knowledge + interprocedural escape sets (RP010)
    # ------------------------------------------------------------------
    def exception_ancestors(self, name: str) -> tuple[str, ...]:
        cls = self.graph.classes.get(name)
        if cls is not None:
            chain = [c.name for c in self.graph.mro(cls)[1:]]
            tail = self.graph.mro(cls)[-1]
            for base in tail.base_names:
                if base not in chain:
                    chain.append(base)
                    chain.extend(_BUILTIN_ANCESTORS.get(base, ("Exception",)))
                    break
            else:
                if not tail.base_names:
                    chain.append("Exception")
            return tuple(dict.fromkeys(chain))
        return _BUILTIN_ANCESTORS.get(name, ("Exception",))

    def is_project_exception(self, name: str) -> bool:
        cls = self.graph.classes.get(name)
        if cls is None:
            return False
        lineage = (name,) + self.exception_ancestors(name)
        return any(
            part.endswith("Error") or part.endswith("Exception")
            or part in ("Exception", "BaseException")
            for part in lineage
        )

    def is_repro_error(self, name: str) -> bool:
        return "ReproError" in (name,) + self.exception_ancestors(name)

    def is_uncatchable_signal(self, name: str) -> bool:
        """BaseException-derived but not Exception-derived: deliberate
        crash-simulation / control-flow signals (``SimulatedCrash``,
        ``KeyboardInterrupt``) designed to bypass handler ladders."""
        lineage = (name,) + self.exception_ancestors(name)
        return "BaseException" in lineage and "Exception" not in lineage

    def caught_by(self, exc_name: str, catcher_names: frozenset[str]) -> bool:
        if not catcher_names:
            return False
        if catcher_names & _CATCH_ALL:
            # `except Exception` misses BaseException-only exceptions.
            if "BaseException" in catcher_names:
                return True
            return "BaseException" not in self.exception_ancestors(exc_name) or (
                "Exception" in self.exception_ancestors(exc_name)
            )
        lineage = {exc_name, *self.exception_ancestors(exc_name)}
        return bool(lineage & catcher_names)

    @staticmethod
    def handler_names(handler: ast.ExceptHandler, source: SourceFile) -> set[str]:
        if handler.type is None:
            return {"BaseException"}
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names: set[str] = set()
        for node in types:
            dotted = source.qualified_name(node)
            if dotted:
                names.add(dotted.split(".")[-1])
        return names

    def escapes(self, qualname: str) -> dict[str, tuple[str, int, str]]:
        """``{exception class: (path, line, origin)}`` escaping a function."""
        if self._escapes is None:
            self._compute_escapes()
        return self._escapes.get(qualname, {})

    def _compute_escapes(self) -> None:
        local: dict[str, dict[str, tuple[str, int, str]]] = {}
        call_records: dict[str, list[tuple[str, frozenset[str]]]] = {}
        for info in self.functions():
            raises, calls = self._escape_structure(info)
            local[info.qualname] = raises
            call_records[info.qualname] = calls
        table = {qual: dict(raises) for qual, raises in local.items()}
        for _ in range(len(table) + 1):
            changed = False
            for qual, records in call_records.items():
                mine = table[qual]
                for callee, catchers in records:
                    for exc, witness in table.get(callee, {}).items():
                        if exc not in mine and not self.caught_by(exc, catchers):
                            mine[exc] = witness
                            changed = True
            if not changed:
                break
        self._escapes = table

    def _escape_structure(
        self, info: FunctionInfo
    ) -> tuple[dict[str, tuple[str, int, str]], list[tuple[str, frozenset[str]]]]:
        """Local escaping raises + (callee, enclosing catchers) records."""
        raises: dict[str, tuple[str, int, str]] = {}
        calls: list[tuple[str, frozenset[str]]] = []
        self._walk_escapes(info, info.node.body, frozenset(), raises, calls)
        return raises, calls

    def _walk_escapes(
        self,
        info: FunctionInfo,
        stmts: Iterable[ast.stmt],
        catchers: frozenset[str],
        raises: dict[str, tuple[str, int, str]],
        calls: list[tuple[str, frozenset[str]]],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # deferred bodies raise at their own call sites
            if isinstance(stmt, ast.Raise):
                name = self._raised_name(info, stmt)
                if name is not None and not self.caught_by(name, catchers):
                    raises.setdefault(
                        name, (info.source.display, stmt.lineno, info.qualname)
                    )
                self._record_calls(info, stmt, catchers, calls)
                continue
            if isinstance(stmt, ast.Try):
                body_catchers = catchers | frozenset().union(
                    *(self.handler_names(h, info.source) for h in stmt.handlers)
                ) if stmt.handlers else catchers
                self._walk_escapes(info, stmt.body, body_catchers, raises, calls)
                self._walk_escapes(info, stmt.orelse, catchers, raises, calls)
                for handler in stmt.handlers:
                    self._walk_escapes(info, handler.body, catchers, raises, calls)
                self._walk_escapes(info, stmt.finalbody, catchers, raises, calls)
                continue
            self._record_calls(info, stmt, catchers, calls, shallow=True)
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if inner:
                    self._walk_escapes(info, inner, catchers, raises, calls)
            for handler in getattr(stmt, "handlers", ()) or ():
                self._walk_escapes(info, handler.body, catchers, raises, calls)
            for case in getattr(stmt, "cases", ()) or ():
                self._walk_escapes(info, case.body, catchers, raises, calls)

    def _record_calls(
        self,
        info: FunctionInfo,
        stmt: ast.stmt,
        catchers: frozenset[str],
        calls: list[tuple[str, frozenset[str]]],
        shallow: bool = False,
    ) -> None:
        roots: list[ast.AST]
        if shallow and isinstance(
            stmt,
            (ast.If, ast.While, ast.For, ast.AsyncFor, ast.With,
             ast.AsyncWith, ast.Match),
        ):
            # Compound statement: only its header expressions execute at
            # this nesting level; bodies are walked with their own
            # catcher context by the caller.
            roots = [
                n for n in (
                    getattr(stmt, "test", None), getattr(stmt, "iter", None),
                    getattr(stmt, "subject", None),
                ) if n is not None
            ]
            roots.extend(
                item.context_expr for item in getattr(stmt, "items", ()) or ()
            )
        else:
            roots = [stmt]
        for root in roots:
            for call in calls_in(root, include_nested=False):
                callee = self.graph.resolve(call, info)
                if callee is not None and callee.node is not info.node:
                    calls.append((callee.qualname, catchers))

    def _raised_name(self, info: FunctionInfo, stmt: ast.Raise) -> str | None:
        exc = stmt.exc
        if exc is None:
            return None  # bare re-raise: already caught here
        if isinstance(exc, ast.Call):
            exc = exc.func
        dotted = info.source.qualified_name(exc)
        if dotted is None:
            return None
        name = dotted.split(".")[-1]
        if name and name[0].islower():
            return None  # `raise err` of a local variable
        return name


# ======================================================================
# RP007 — lock-order consistency
# ======================================================================

class LockOrderChecker(Checker):
    """The project-wide lock-acquisition graph must be acyclic.

    An edge ``A -> B`` means some path acquires ``B`` while holding
    ``A`` — directly (``with self._lock:`` nesting, ``acquire()``
    calls) or through a resolved call edge into a function that
    transitively acquires ``B``. Any cycle is a potential deadlock and
    is reported with one witness path per edge. Re-acquiring a held
    non-reentrant lock is a self-cycle; RLocks are exempt from
    self-edges only.
    """

    rule = "RP007"
    severity = "error"
    description = (
        "lock-acquisition order must be globally consistent: cycles in "
        "the lock-order graph (including via call edges) are potential "
        "deadlocks"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = FlowContext.of(project)
        trans = ctx.transitive_acquires()
        edges: dict[tuple[str, str], tuple[str, int, str]] = {}
        findings: list[Finding] = []
        for info in ctx.functions():
            resolve = ctx.lock_resolver(info)
            for stmt, held in iter_with_pre_states(
                ctx.cfg(info), LockSets(resolve)
            ):
                for lock, node, via, same_stmt in self._acquisitions(
                    ctx, info, stmt, trans
                ):
                    for held_lock in held | same_stmt:
                        if held_lock == lock:
                            if ctx.lock_kind(lock) == "rlock":
                                continue
                            suffix = f" via {via}" if via else ""
                            findings.append(Finding(
                                path=info.source.display,
                                line=getattr(node, "lineno", 1),
                                col=getattr(node, "col_offset", 0),
                                rule=self.rule, severity=self.severity,
                                message=(
                                    f"{info.qualname} re-acquires "
                                    f"non-reentrant lock {lock} already "
                                    f"held{suffix}: guaranteed deadlock"
                                ),
                            ))
                        else:
                            edges.setdefault(
                                (held_lock, lock),
                                (
                                    info.source.display,
                                    getattr(node, "lineno", 1),
                                    f"{info.qualname}"
                                    + (f" via {via}" if via else ""),
                                ),
                            )
        findings.extend(self._cycle_findings(edges))
        return findings

    def _acquisitions(
        self,
        ctx: FlowContext,
        info: FunctionInfo,
        stmt,
        trans: dict[str, frozenset[str]],
    ) -> Iterator[tuple[str, ast.AST, str | None, frozenset[str]]]:
        """Lock acquisitions in one block statement:
        ``(lock, node, via-call, locks-taken-earlier-in-this-stmt)``."""
        resolve = ctx.lock_resolver(info)
        if isinstance(stmt, WithEnter):
            seen_before: set[str] = set()
            for item in stmt.items:
                lock = resolve(item.context_expr)
                if lock is not None:
                    # `with a, b:` orders a before b.
                    yield lock, stmt.node, None, frozenset(seen_before)
                    seen_before.add(lock)
            return
        if isinstance(stmt, ast.stmt):
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                func = stmt.value.func
                if isinstance(func, ast.Attribute) and func.attr == "acquire":
                    lock = resolve(func.value)
                    if lock is not None:
                        yield lock, stmt, None, frozenset()
                        return
            for call in calls_in(stmt, include_nested=False):
                callee = ctx.graph.resolve(call, info)
                if callee is None or callee.node is info.node:
                    continue
                for lock in trans.get(callee.qualname, ()):
                    yield lock, call, f"call to {callee.name}()", frozenset()

    def _cycle_findings(
        self, edges: dict[tuple[str, str], tuple[str, int, str]]
    ) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        for component in _tarjan_sccs(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            cycle_edges = sorted(
                (pair, witness) for pair, witness in edges.items()
                if pair[0] in component and pair[1] in component
            )
            paths = "; ".join(
                f"{src} -> {dst} at {path}:{line} in {where}"
                for (src, dst), (path, line, where) in cycle_edges
            )
            path, line, _ = cycle_edges[0][1]
            yield Finding(
                path=path, line=line, col=0,
                rule=self.rule, severity=self.severity,
                message=(
                    "lock-order cycle between "
                    + ", ".join(members)
                    + f" (potential deadlock): {paths}"
                ),
            )


def _tarjan_sccs(graph: dict[str, set[str]]) -> list[set[str]]:
    """Strongly connected components, iteratively (no recursion limit)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[set[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result


# ======================================================================
# RP008 — atomicity on @thread_shared state
# ======================================================================

class AtomicityChecker(Checker):
    """Check-then-act races and blocking calls under shared locks.

    Part (a): a branch tested *outside* the lock must not be the only
    guard for a write *inside* the lock — unless the locked region
    re-reads the same attribute first (the sanctioned double-check
    idiom used by every cache in ``repro.runtime``).

    Part (b): no blocking call (disk I/O, ``time.sleep``, pool
    submit/shutdown, ``wait``) while holding a ``@thread_shared``
    class's lock — directly or through a resolved call chain. The one
    sanctioned waiter: ``Condition.wait`` where the condition was
    constructed on the held lock, which atomically releases it.
    """

    rule = "RP008"
    severity = "error"
    description = (
        "@thread_shared atomicity: no check-then-act across lock "
        "regions without an in-lock re-read, and no blocking calls "
        "while holding a shared lock"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = FlowContext.of(project)
        for info in ctx.functions():
            cls = ctx.graph.class_of(info)
            if cls is not None and cls.thread_shared and info.name != "__init__":
                yield from self._check_check_then_act(ctx, info, cls)
            yield from self._check_blocking(ctx, info)

    # -- part (a): check-then-act ---------------------------------------
    def _check_check_then_act(
        self, ctx: FlowContext, info: FunctionInfo, cls: ClassInfo
    ) -> Iterator[Finding]:
        resolve = ctx.lock_resolver(info)
        derived: dict[str, set[str]] = {}  # local var -> self attrs it reads

        def note_derivations(stmt: ast.stmt) -> None:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                attrs = _self_attrs_read(stmt.value)
                if attrs:
                    derived[stmt.targets[0].id] = attrs

        def guard_attrs(test: ast.expr) -> set[str]:
            attrs = _self_attrs_read(test)
            for node in ast.walk(test):
                if isinstance(node, ast.Name):
                    attrs |= derived.get(node.id, set())
            return attrs

        def scan(stmts, guards: list[tuple[ast.expr, set[str]]]):
            guards = list(guards)
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                note_derivations(stmt)
                if isinstance(stmt, (ast.If, ast.While)):
                    attrs = guard_attrs(stmt.test)
                    inner = guards + ([(stmt.test, attrs)] if attrs else [])
                    yield from scan(stmt.body, inner)
                    yield from scan(stmt.orelse, inner)
                    # An early-exit guard (`if self._x: return`) guards
                    # every following sibling the same way nesting would.
                    if attrs and stmt.body and isinstance(
                        stmt.body[-1],
                        (ast.Return, ast.Raise, ast.Continue, ast.Break),
                    ):
                        guards.append((stmt.test, attrs))
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    locked = any(
                        resolve(item.context_expr) is not None
                        for item in stmt.items
                    )
                    if locked and guards:
                        yield from self._check_locked_region(
                            info, stmt, guards
                        )
                        # Nested regions under the same guards are covered.
                        yield from scan(stmt.body, [])
                    else:
                        yield from scan(stmt.body, guards)
                elif isinstance(stmt, ast.Try):
                    yield from scan(stmt.body, guards)
                    for handler in stmt.handlers:
                        yield from scan(handler.body, guards)
                    yield from scan(stmt.orelse, guards)
                    yield from scan(stmt.finalbody, guards)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    yield from scan(stmt.body, guards)
                    yield from scan(stmt.orelse, guards)

        yield from scan(info.node.body, [])

    def _check_locked_region(
        self,
        info: FunctionInfo,
        region: ast.With | ast.AsyncWith,
        guards: list[tuple[ast.expr, set[str]]],
    ) -> Iterator[Finding]:
        reads = _self_attrs_read_region(region.body)
        for write_node, attr in _self_attr_writes(region.body):
            guard = next(
                (test for test, attrs in guards if attr in attrs), None
            )
            if guard is None or attr in reads:
                continue
            yield Finding(
                path=info.source.display,
                line=write_node.lineno,
                col=write_node.col_offset,
                rule=self.rule, severity=self.severity,
                message=(
                    f"check-then-act race in {info.qualname}: write to "
                    f"self.{attr} is guarded by a test at line "
                    f"{guard.lineno} *outside* the lock and the locked "
                    f"region never re-reads self.{attr}; re-check under "
                    "the lock (double-check idiom) or widen the lock"
                ),
            )

    # -- part (b): blocking calls under a shared lock --------------------
    def _check_blocking(
        self, ctx: FlowContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        resolve = ctx.lock_resolver(info)
        for stmt, held in iter_with_pre_states(
            ctx.cfg(info), LockSets(resolve)
        ):
            shared = sorted(
                lock for lock in held if ctx.is_thread_shared_lock(lock)
            )
            if not shared or not isinstance(stmt, ast.stmt):
                continue
            for call in calls_in(stmt, include_nested=False):
                label = ctx._blocking_primitive(call, info)
                if label is None:
                    callee = ctx.graph.resolve(call, info)
                    if callee is None or callee.node is info.node:
                        continue
                    reason = ctx.blocking_reason(callee.qualname)
                    if reason is None:
                        continue
                    label = f"{callee.name}() [{reason}]"
                elif self._is_sanctioned_wait(call, resolve, held):
                    continue
                yield Finding(
                    path=info.source.display,
                    line=call.lineno,
                    col=call.col_offset,
                    rule=self.rule, severity=self.severity,
                    message=(
                        f"{info.qualname} holds {', '.join(shared)} across "
                        f"blocking call {label}; move the blocking work "
                        "outside the lock (snapshot under lock, act after)"
                    ),
                )

    @staticmethod
    def _is_sanctioned_wait(
        call: ast.Call, resolve, held: frozenset[str]
    ) -> bool:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("wait", "wait_for")
        ):
            return False
        lock = resolve(call.func.value)
        return lock is not None and lock in held


def _self_attrs_read(expr: ast.expr) -> set[str]:
    """Underscore-attrs of ``self`` read anywhere inside an expression."""
    attrs: set[str] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr.startswith("_")
        ):
            attrs.add(node.attr)
    return attrs


def _self_attr_writes(stmts: Iterable[ast.stmt]) -> Iterator[tuple[ast.AST, str]]:
    """(node, attr) for every write/mutation of ``self._x`` in a region."""
    def attr_of(target: ast.expr) -> str | None:
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr.startswith("_")
        ):
            return node.attr
        return None

    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = attr_of(target)
                    if attr is not None:
                        yield node, attr
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = attr_of(target)
                    if attr is not None:
                        yield node, attr
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = attr_of(node.func.value)
                if attr is not None:
                    yield node, attr


def _self_attrs_read_region(stmts: Iterable[ast.stmt]) -> set[str]:
    """``self._x`` attrs genuinely *read* in a region (tests, RHS,
    membership) — excluding reads that only serve as a write target."""
    write_targets: set[int] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    inner = target
                    while isinstance(inner, ast.Subscript):
                        inner = inner.value
                    write_targets.add(id(inner))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                write_targets.add(id(node.func.value))
    reads: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr.startswith("_")
                and id(node) not in write_targets
            ):
                reads.add(node.attr)
    return reads


# ======================================================================
# RP009 — deadline propagation
# ======================================================================

class DeadlineChecker(Checker):
    """A bound ``deadline`` must reach every deadline-aware callee.

    Fires when a function that binds ``deadline`` (parameter or local)
    calls a resolved project function whose signature accepts
    ``deadline`` without passing it and without being lexically inside
    ``with deadline_scope(deadline)`` — the two sanctioned transports.
    Closures are walked as part of their lexical parent: they inherit
    the binding and the obligation.
    """

    rule = "RP009"
    severity = "error"
    description = (
        "deadline propagation: functions that bind 'deadline' must "
        "forward it to deadline-aware callees (argument or "
        "deadline_scope)"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = FlowContext.of(project)
        for info in ctx.functions():
            if not self._binds_deadline(info):
                continue
            yield from self._scan(ctx, info, info.node.body, in_scope=False)

    @staticmethod
    def _binds_deadline(info: FunctionInfo) -> bool:
        if "deadline" in info.params:
            return True
        for node in ast.walk(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                    node is not info.node:
                continue
            if isinstance(node, ast.Name) and node.id == "deadline" and \
                    isinstance(node.ctx, ast.Store):
                return True
        return False

    def _scan(
        self, ctx: FlowContext, info: FunctionInfo, body, in_scope: bool
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                entered = in_scope or any(
                    self._is_deadline_scope(info, item.context_expr)
                    for item in node.items
                )
                yield from self._check_exprs(ctx, info, node.items, in_scope)
                yield from self._scan(ctx, info, node.body, entered)
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested def: own deadline param shadows the binding.
                if "deadline" not in [a.arg for a in node.args.args]:
                    yield from self._scan(ctx, info, node.body, in_scope)
                continue
            yield from self._check_exprs(ctx, info, [node], in_scope,
                                         shallow=True)
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(node, field, None)
                if inner:
                    yield from self._scan(ctx, info, inner, in_scope)
            for handler in getattr(node, "handlers", ()) or ():
                yield from self._scan(ctx, info, handler.body, in_scope)
            for case in getattr(node, "cases", ()) or ():
                yield from self._scan(ctx, info, case.body, in_scope)

    def _check_exprs(
        self, ctx: FlowContext, info: FunctionInfo, roots, in_scope: bool,
        shallow: bool = False,
    ) -> Iterator[Finding]:
        if in_scope:
            return
        for root in roots:
            if shallow and isinstance(
                root,
                (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try, ast.Match),
            ):
                headers = [
                    n for n in (
                        getattr(root, "test", None),
                        getattr(root, "iter", None),
                        getattr(root, "subject", None),
                    ) if n is not None
                ]
            else:
                headers = [root]
            for header in headers:
                for call in calls_in(header, include_nested=True):
                    yield from self._check_call(ctx, info, call)

    def _check_call(
        self, ctx: FlowContext, info: FunctionInfo, call: ast.Call
    ) -> Iterator[Finding]:
        callee = ctx.graph.resolve(call, info)
        if callee is None or callee.node is info.node:
            return
        if "deadline" not in callee.params:
            return
        if self._forwards_deadline(call):
            return
        yield Finding(
            path=info.source.display,
            line=call.lineno,
            col=call.col_offset,
            rule=self.rule, severity=self.severity,
            message=(
                f"{info.qualname} binds 'deadline' but calls "
                f"{callee.name}() without it: pass deadline= or enter "
                "deadline_scope(deadline) so the budget survives the "
                "call edge"
            ),
        )

    @staticmethod
    def _forwards_deadline(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "deadline":
                return True
            if keyword.arg is None:  # **kwargs forwarding
                return True
        for arg in list(call.args) + [k.value for k in call.keywords]:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id == "deadline":
                    return True
        return False

    @staticmethod
    def _is_deadline_scope(info: FunctionInfo, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = info.source.qualified_name(expr.func)
        return bool(dotted) and dotted.split(".")[-1] == "deadline_scope"


# ======================================================================
# RP010 — exception-contract flow
# ======================================================================

class ExceptionFlowChecker(Checker):
    """Interprocedural exception contracts.

    Part 1: only ``ReproError`` subclasses may escape *public* entry
    points (every dotted-name segment public). Project-defined
    exception classes outside the ``ReproError`` tree escaping a public
    function are reported at the function, with the origin raise site.
    Builtin raises are RP002's per-site concern and are not duplicated
    here.

    Part 2: a dispatcher status ladder — a ``try`` whose handlers
    assign ``status`` (the HTTP-mapping idiom in
    ``runtime/daemon.py``) — must cover every class that can escape its
    body; an uncovered class means a request path with no HTTP row.
    """

    rule = "RP010"
    severity = "error"
    description = (
        "exception contract: only ReproError subclasses may escape "
        "public entry points, and dispatcher status ladders must cover "
        "every escapable class"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = FlowContext.of(project)
        for info in ctx.functions():
            if info.is_public:
                yield from self._check_public_surface(ctx, info)
            yield from self._check_dispatchers(ctx, info)

    def _check_public_surface(
        self, ctx: FlowContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        if info.name == "__getattr__":
            return
        for exc, (path, line, origin) in sorted(ctx.escapes(info.qualname).items()):
            if not ctx.is_project_exception(exc) or ctx.is_repro_error(exc):
                continue
            if ctx.is_uncatchable_signal(exc):
                continue
            yield Finding(
                path=info.source.display,
                line=info.node.lineno,
                col=info.node.col_offset,
                rule=self.rule, severity=self.severity,
                message=(
                    f"public entry point {info.qualname} can leak "
                    f"{exc} (raised at {path}:{line} in {origin}), which "
                    "is not a ReproError subclass: wrap it or move it "
                    "into the ReproError hierarchy"
                ),
            )

    def _check_dispatchers(
        self, ctx: FlowContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Try) or len(node.handlers) < 2:
                continue
            status_handlers = sum(
                1 for handler in node.handlers
                if any(
                    isinstance(inner, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == "status"
                        for t in inner.targets
                    )
                    for inner in ast.walk(handler)
                )
            )
            if status_handlers < 2:
                continue
            catcher_names = frozenset().union(
                *(FlowContext.handler_names(h, info.source)
                  for h in node.handlers)
            )
            raises: dict[str, tuple[str, int, str]] = {}
            calls: list[tuple[str, frozenset[str]]] = []
            ctx._walk_escapes(info, node.body, frozenset(), raises, calls)
            escaping = dict(raises)
            for callee, catchers in calls:
                for exc, witness in ctx.escapes(callee).items():
                    if exc not in escaping and not ctx.caught_by(exc, catchers):
                        escaping[exc] = witness
            for exc, (path, line, origin) in sorted(escaping.items()):
                if ctx.caught_by(exc, catcher_names):
                    continue
                if ctx.is_uncatchable_signal(exc):
                    continue
                yield Finding(
                    path=info.source.display,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule, severity=self.severity,
                    message=(
                        f"status ladder in {info.qualname} has no row "
                        f"for {exc} (raised at {path}:{line} in "
                        f"{origin}): add an except mapping it to a "
                        "status code"
                    ),
                )


# ======================================================================
# RP011 — resource discipline
# ======================================================================

class _ResourceAnalysis(Analysis):
    """May-leak tracking of resources bound to local names.

    State: frozenset of ``(var, line, kind)`` tokens, joined by union —
    a resource is a leak candidate if *any* path reaches an exit with
    the token live. Ownership transfers (return, attribute storage,
    passing to an unknown call) drop the token: the rule targets
    resources this function owns on every path.
    """

    def __init__(self, source: SourceFile):
        self.source = source

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, states: list) -> frozenset:
        merged = states[0]
        for state in states[1:]:
            merged = merged | state
        return merged

    def transfer(self, stmt, state: frozenset) -> frozenset:
        if isinstance(stmt, WithEnter):
            for item in stmt.items:
                if isinstance(item.context_expr, ast.Name):
                    state = self._drop(state, item.context_expr.id)
            return state
        if not isinstance(stmt, ast.stmt):
            return state
        state = self._apply_releases(stmt, state)
        acquired = self._acquisition(stmt)
        if acquired is not None:
            var, line, kind = acquired
            state = self._drop(state, var) | {(var, line, kind)}
            return state
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and isinstance(func.value, ast.Name)
            ):
                return state | {(func.value.id, stmt.lineno, "lock")}
        state = self._apply_escapes(stmt, state)
        return state

    def exceptional(self, stmt, state_before: frozenset) -> frozenset:
        # A release that itself raises still counts as released; an
        # acquisition that raises never produced the resource.
        if isinstance(stmt, ast.stmt):
            return self._apply_releases(stmt, state_before)
        return state_before

    # ------------------------------------------------------------------
    @staticmethod
    def _drop(state: frozenset, var: str) -> frozenset:
        return frozenset(t for t in state if t[0] != var)

    def _acquisition(self, stmt) -> tuple[str, int, str] | None:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            return None
        dotted = self.source.qualified_name(stmt.value.func)
        if dotted is None:
            return None
        kind = _RESOURCE_ACQUIRERS.get(dotted)
        if kind is None:
            kind = _RESOURCE_ACQUIRER_TAILS.get(dotted.split(".")[-1])
        if kind is None:
            return None
        return stmt.targets[0].id, stmt.lineno, kind

    def _apply_releases(self, stmt: ast.stmt, state: frozenset) -> frozenset:
        for call in calls_in(stmt, include_nested=False):
            func = call.func
            dotted = self.source.qualified_name(func)
            if dotted == "os.close":
                if call.args and isinstance(call.args[0], ast.Name):
                    state = self._drop(state, call.args[0].id)
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _RESOURCE_RELEASE_METHODS
                and isinstance(func.value, ast.Name)
            ):
                state = self._drop(state, func.value.id)
        return state

    def _apply_escapes(self, stmt: ast.stmt, state: frozenset) -> frozenset:
        if not state:
            return state
        live = {t[0] for t in state}

        def escape(name: str) -> None:
            nonlocal state
            state = self._drop(state, name)

        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Name) and node.id in live and \
                        isinstance(node.ctx, ast.Load):
                    escape(node.id)
        if isinstance(stmt, ast.Assign):
            # Storing the resource elsewhere transfers ownership.
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Name) and node.id in live:
                    escape(node.id)
        # Passing the bare name to an unknown call transfers ownership
        # (e.g. `closing(sock)`, `json.dump(obj, fh)`); method calls on
        # the resource and the known os.* accessors do not.
        for call in calls_in(stmt, include_nested=False):
            dotted = self.source.qualified_name(call.func) or ""
            if dotted in _RESOURCE_NEUTRAL or dotted == "os.close":
                continue
            if (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in live
            ):
                continue  # fh.write(...): a use, not a transfer
            for arg in list(call.args) + [k.value for k in call.keywords]:
                if isinstance(arg, ast.Name) and arg.id in live:
                    escape(arg.id)
        return state


class ResourceChecker(Checker):
    """Resources acquired outside ``with`` must be released on all paths."""

    rule = "RP011"
    severity = "error"
    description = (
        "resource discipline: files/sockets/executors/locks acquired "
        "outside 'with' must be released on every path, including "
        "exceptional ones"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = FlowContext.of(project)
        for info in ctx.functions():
            cfg = ctx.cfg(info)
            analysis = _ResourceAnalysis(info.source)
            states = run_forward(cfg, analysis)
            leaks: dict[tuple[str, int, str], set[str]] = {}
            for exit_block, label in (
                (cfg.exit, "normal"), (cfg.raise_exit, "exceptional"),
            ):
                state = states[exit_block].in_state
                if state is UNREACHED:
                    continue
                for token in state:
                    leaks.setdefault(token, set()).add(label)
            for (var, line, kind), labels in sorted(leaks.items()):
                where = (
                    "an exceptional path"
                    if labels == {"exceptional"}
                    else "some path(s)"
                )
                yield Finding(
                    path=info.source.display,
                    line=line, col=0,
                    rule=self.rule, severity=self.severity,
                    message=(
                        f"{kind} '{var}' acquired in {info.qualname} may "
                        f"never be released on {where}: use 'with', or "
                        "release in a finally that covers every exit"
                    ),
                )


FLOW_CHECKERS: list[Checker] = [
    LockOrderChecker(),
    AtomicityChecker(),
    DeadlineChecker(),
    ExceptionFlowChecker(),
    ResourceChecker(),
]
