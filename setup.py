"""Legacy setup shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 517/660 editable installs (which need ``bdist_wheel``) fail. This
shim lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
path (``--no-use-pep517`` is implied by the absence of a usable wheel
builder on older pips; pass it explicitly if needed).
"""

from setuptools import setup

setup()
