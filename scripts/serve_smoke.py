"""End-to-end smoke test for ``repro serve`` (the `make serve-smoke` target).

Exercises the daemon exactly the way an operator does — as a subprocess
speaking HTTP — rather than in-process like the unit suite:

1. fit and save a tiny model into a temp models dir;
2. start ``python -m repro serve --models-dir ... --port 0`` and parse the
   ephemeral port from its announcement line;
3. hit every endpoint (``/ready``, ``/health``, ``/stats``, ``/riskmap``,
   ``/plan``, ``POST /models/MFNP/reload``) and check the risk map is
   bit-identical to the direct library call;
4. send SIGTERM and assert the graceful drain exits with code 0.

Exits 0 on success; any failure prints a diagnosis and exits 1.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.runtime.service import RiskMapService

SEED = 0
SCALE = 0.4
TIMEOUT = 120.0  # whole-script watchdog, seconds


def log(message: str) -> None:
    print(f"serve-smoke: {message}", file=sys.stderr)


def get(port: int, path: str, method: str = "GET"):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    deadline = time.monotonic() + TIMEOUT
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        models_dir = Path(tmp) / "models"
        log("fitting and saving a tiny MFNP model...")
        park = generate_dataset(MFNP.scaled(SCALE), seed=SEED)
        split = park.dataset.split_by_test_year(4)
        predictor = PawsPredictor(
            model="dtb", iware=True, n_classifiers=2, n_estimators=2, seed=5
        ).fit(split.train)
        predictor.save(models_dir / "MFNP")
        features = predictor.cell_feature_matrix(
            park.park, park.recorded_effort[-1]
        )
        direct = RiskMapService(predictor).risk_map(features, effort=1.5)
        post = int(park.park.patrol_posts[0])

        log("starting the daemon on an ephemeral port...")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--models-dir", str(models_dir), "--port", "0"],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            line = daemon.stdout.readline().strip()
            log(f"announcement: {line!r}")
            if "listening on http://" not in line:
                log("FAIL: no listening announcement")
                return 1
            port = int(line.split("listening on http://", 1)[1]
                       .split(None, 1)[0].rsplit(":", 1)[1])

            while True:  # /ready flips 200 once the registry has scanned
                try:
                    status, body = get(port, "/ready")
                    if status == 200 and body["ready"]:
                        break
                except (urllib.error.URLError, OSError):
                    pass
                if time.monotonic() > deadline:
                    log("FAIL: /ready never returned 200")
                    return 1
                time.sleep(0.05)
            log(f"ready (parks: {body['parks']})")

            status, body = get(port, "/health")
            assert status == 200 and body["status"] == "ok", body
            log("health ok")

            path = f"/riskmap?park=MFNP&effort=1.5&seed={SEED}&scale={SCALE}"
            status, body = get(port, path)
            assert status == 200, body
            assert np.array_equal(np.asarray(body["risk"]), direct), (
                "served risk map is not bit-identical to the library call"
            )
            log(f"riskmap ok ({body['n_cells']} cells, bit-identical)")

            status, body = get(
                port,
                f"/plan?park=MFNP&post={post}&seed={SEED}&scale={SCALE}",
            )
            assert status == 200, body
            plan = body["plans"][str(post)]
            assert plan["routes"], body
            log(f"plan ok (post {post}, {len(plan['routes'])} route(s))")

            status, body = get(port, "/models/MFNP/reload", method="POST")
            assert status == 200 and body["reloaded"], body
            log(f"reload ok (version {body['version']})")

            status, body = get(port, "/stats")
            assert status == 200, body
            admission = body["admission"]
            assert admission["shed_saturated"] == 0, admission
            log(f"stats ok (completed={admission['completed']})")

            log("sending SIGTERM for the graceful drain...")
            daemon.send_signal(signal.SIGTERM)
            code = daemon.wait(timeout=max(1.0, deadline - time.monotonic()))
            if code != 0:
                log(f"FAIL: daemon exited {code} after SIGTERM, wanted 0")
                return 1
            log("drained, exit 0")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
            daemon.stdout.close()
    log("PASS: every endpoint answered and SIGTERM drained cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
